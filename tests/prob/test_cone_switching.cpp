#include "prob/cone_switching.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"
#include "sim/simulator.hpp"

namespace deepseq {
namespace {

Workload uniform_workload(const Circuit& c, double p) {
  Workload w;
  w.pi_prob.assign(c.pis().size(), p);
  w.pattern_seed = 9;
  return w;
}

double mean_abs_toggle_error(const SwitchingEstimate& est,
                             const NodeActivity& act, const Circuit& c) {
  double acc = 0.0;
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    acc += std::fabs(est.tr01[v] + est.tr10[v] - act.toggle_rate(v));
  return acc / static_cast<double>(c.num_nodes());
}

TEST(ConeSwitching, ContradictionIsExactlyZero) {
  // y = a AND NOT a == 0; independence predicts p(1-p).
  Circuit c("contra");
  const NodeId a = c.add_pi("a");
  const NodeId na = c.add_not(a, "na");
  const NodeId y = c.add_and(a, na, "y");
  c.add_po(y, "y");
  const Workload w = uniform_workload(c, 0.5);

  const SwitchingEstimate plain = estimate_switching(c, w);
  EXPECT_NEAR(plain.logic1[y], 0.25, 1e-9);  // the independence error

  const ConeSwitchingEstimate cone = estimate_switching_cone(c, w);
  EXPECT_NEAR(cone.logic1[y], 0.0, 1e-12);
  EXPECT_NEAR(cone.tr01[y] + cone.tr10[y], 0.0, 1e-12);
  EXPECT_EQ(cone.exact_nodes, 1u);
}

TEST(ConeSwitching, TautologyIsExactlyOne) {
  // y = a OR NOT a == 1.
  Circuit c("tauto");
  const NodeId a = c.add_pi("a");
  const NodeId na = c.add_not(a, "na");
  const NodeId y = c.add_gate(GateType::kOr, {a, na}, "y");
  c.add_po(y, "y");
  const Workload w = uniform_workload(c, 0.3);
  const ConeSwitchingEstimate cone = estimate_switching_cone(c, w);
  EXPECT_NEAR(cone.logic1[y], 1.0, 1e-12);
}

TEST(ConeSwitching, ReconvergentIdentityMatchesSource) {
  // y = (a AND b) OR (a AND NOT b) == a: joint must equal a's Bernoulli.
  Circuit c("ident");
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId nb = c.add_not(b, "nb");
  const NodeId t1 = c.add_and(a, b, "t1");
  const NodeId t2 = c.add_and(a, nb, "t2");
  const NodeId y = c.add_gate(GateType::kOr, {t1, t2}, "y");
  c.add_po(y, "y");
  const double p = 0.37;
  const Workload w = uniform_workload(c, p);

  const ConeSwitchingEstimate cone = estimate_switching_cone(c, w);
  EXPECT_NEAR(cone.logic1[y], p, 1e-12);
  EXPECT_NEAR(cone.tr01[y], (1.0 - p) * p, 1e-12);

  const SwitchingEstimate plain = estimate_switching(c, w);
  EXPECT_GT(std::fabs(plain.logic1[y] - p), 1e-3);  // independence is off
}

TEST(ConeSwitching, AgreesWithPlainOnTrees) {
  // Fanout-free logic: independence is exact, so both estimators and the
  // simulator agree.
  Circuit c("tree");
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId d = c.add_pi("d");
  const NodeId e = c.add_pi("e");
  const NodeId g1 = c.add_and(a, b, "g1");
  const NodeId g2 = c.add_gate(GateType::kXor, {d, e}, "g2");
  const NodeId y = c.add_gate(GateType::kOr, {g1, g2}, "y");
  c.add_po(y, "y");
  const Workload w = uniform_workload(c, 0.4);

  const SwitchingEstimate plain = estimate_switching(c, w);
  const ConeSwitchingEstimate cone = estimate_switching_cone(c, w);
  EXPECT_EQ(cone.exact_nodes, 0u);
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    EXPECT_NEAR(cone.logic1[v], plain.logic1[v], 1e-12);
    EXPECT_NEAR(cone.tr01[v], plain.tr01[v], 1e-12);
  }
}

TEST(ConeSwitching, CloseToSimulationOnS27) {
  // Sequential case: FF source processes are *not* independent (they are
  // correlated with the PIs through the feedback), so within-cone
  // exactness is not a guaranteed win — only a comparable-quality
  // estimate. The strict ordering is asserted combinationally below.
  const Circuit c = iscas89_s27();
  const Workload w = uniform_workload(c, 0.5);
  ActivityOptions opt;
  opt.num_cycles = 30000;
  const NodeActivity act = collect_activity(c, w, opt);
  const ConeSwitchingEstimate cone = estimate_switching_cone(c, w);
  const SwitchingEstimate plain = estimate_switching(c, w);
  EXPECT_LT(mean_abs_toggle_error(cone, act, c), 0.08);
  EXPECT_LT(mean_abs_toggle_error(plain, act, c), 0.08);
}

TEST(ConeSwitching, BeatsPlainOnCombinationalReconvergence) {
  // Combinational circuits with independent PIs: enumerated joints are
  // exact, so the cone estimate must be at least as close to simulation.
  double plain_total = 0.0, cone_total = 0.0;
  for (std::uint64_t seed : {301, 302, 303, 304}) {
    Rng rng(seed);
    GeneratorSpec spec;
    spec.num_pis = 6;
    spec.num_ffs = 0;
    spec.num_gates = 50;
    spec.locality = 8.0;  // dense sharing -> lots of reconvergence
    const Circuit c = generate_circuit(spec, rng);
    const Workload w = random_workload(c, rng);
    ActivityOptions opt;
    opt.num_cycles = 30000;
    const NodeActivity act = collect_activity(c, w, opt);
    plain_total += mean_abs_toggle_error(estimate_switching(c, w), act, c);
    cone_total +=
        mean_abs_toggle_error(estimate_switching_cone(c, w), act, c);
  }
  EXPECT_LE(cone_total, plain_total + 1e-3);
}

TEST(ConeSwitching, WideSupportFallsBackGracefully) {
  // Parity of 12 PIs through shared structure: support exceeds the cap at
  // the top, so the estimate still completes with fallback nodes counted.
  Circuit c("wide");
  std::vector<NodeId> pis;
  for (int i = 0; i < 12; ++i) pis.push_back(c.add_pi("p" + std::to_string(i)));
  NodeId acc = pis[0];
  for (int i = 1; i < 12; ++i)
    acc = c.add_gate(GateType::kXor, {acc, pis[i]});
  // Add a reconvergence over the wide cone.
  const NodeId y = c.add_gate(GateType::kXor, {acc, pis[0]}, "y");
  c.add_po(y, "y");
  ConeSwitchingOptions opt;
  opt.max_support = 6;
  const ConeSwitchingEstimate cone =
      estimate_switching_cone(c, uniform_workload(c, 0.5), opt);
  EXPECT_GT(cone.fallback_nodes, 0u);
  EXPECT_GE(cone.logic1[y], 0.0);
  EXPECT_LE(cone.logic1[y], 1.0);
}

class ConeVsPlainRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConeVsPlainRandom, ConeIsNoWorseOnAverage) {
  Rng rng(GetParam());
  GeneratorSpec spec;
  spec.num_pis = 6;
  spec.num_ffs = 4;
  spec.num_gates = 60;
  const Circuit c = generate_circuit(spec, rng);
  const Workload w = random_workload(c, rng);
  ActivityOptions opt;
  opt.num_cycles = 20000;
  const NodeActivity act = collect_activity(c, w, opt);
  const double plain_err =
      mean_abs_toggle_error(estimate_switching(c, w), act, c);
  const double cone_err =
      mean_abs_toggle_error(estimate_switching_cone(c, w), act, c);
  // Within-cone exactness should help or at least not hurt much; allow a
  // small tolerance for FF fixed-point interaction.
  EXPECT_LE(cone_err, plain_err + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConeVsPlainRandom,
                         ::testing::Values(71, 72, 73, 74, 75, 76));

TEST(ConeSwitching, RejectsBadArguments) {
  const Circuit c = iscas89_s27();
  Workload w;  // wrong PI count
  EXPECT_THROW(estimate_switching_cone(c, w), Error);
  ConeSwitchingOptions opt;
  opt.max_support = 0;
  EXPECT_THROW(estimate_switching_cone(c, uniform_workload(c, 0.5), opt),
               Error);
  opt.max_support = 13;
  EXPECT_THROW(estimate_switching_cone(c, uniform_workload(c, 0.5), opt),
               Error);
}

}  // namespace
}  // namespace deepseq
