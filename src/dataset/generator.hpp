#pragma once

#include <string>

#include "common/rng.hpp"
#include "netlist/circuit.hpp"

namespace deepseq {

/// Parameters of the random sequential-netlist generator used to synthesize
/// benchmark-family circuits (our substitute for the ISCAS'89 / ITC'99 /
/// OpenCores sources; see DESIGN.md §2). Gates are created in topological
/// order with locality-biased fanin selection (yields realistic logic
/// depth); FF D-inputs close feedback loops afterwards.
struct GeneratorSpec {
  std::string name = "rand";
  int num_pis = 8;
  int num_ffs = 12;
  int num_gates = 150;
  /// Mean distance (in creation order) between a gate and its fanins;
  /// smaller = deeper circuits.
  double locality = 24.0;
  /// Relative weights of generated gate types, indexed by GateType. AIG-only
  /// circuits set everything but AND/NOT to zero.
  double gate_weights[kNumGateTypes] = {
      /*CONST0*/ 0, /*PI*/ 0, /*AND*/ 4, /*NOT*/ 2, /*FF*/ 0,
      /*BUF*/ 0.5,  /*OR*/ 3, /*NAND*/ 2, /*NOR*/ 1, /*XOR*/ 1, /*XNOR*/ 0.5,
      /*MUX*/ 1};
  /// Fraction of non-sink gates additionally exported as observable POs.
  double extra_po_fraction = 0.05;
};

/// Generate a valid (acyclic-combinational) random sequential netlist.
Circuit generate_circuit(const GeneratorSpec& spec, Rng& rng);

/// Family presets whose node statistics mirror Table I.
GeneratorSpec iscas89_like_spec(Rng& rng);
GeneratorSpec itc99_like_spec(Rng& rng);
GeneratorSpec opencores_like_spec(Rng& rng);

}  // namespace deepseq
