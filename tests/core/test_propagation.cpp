// Tests of the customized propagation scheme (paper Fig. 2): cycle removal,
// levelized forward pass, reverse pass, and the FF state-copy step. These
// verify the *schedule semantics* on a circuit shaped like the figure's
// 8-node example.

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"
#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"

namespace deepseq {
namespace {

using nn::Graph;
using nn::Tensor;

/// A small sequential AIG in the spirit of Fig. 2: PIs feed logic, an FF
/// closes a cycle back into the logic.
Circuit fig2_circuit() {
  Circuit c("fig2");
  const NodeId i1 = c.add_pi("i1");
  const NodeId i2 = c.add_pi("i2");
  const NodeId ff = c.add_ff(kNullNode, "ff");      // node 3 in the figure
  const NodeId g4 = c.add_and(i1, i2, "g4");
  const NodeId g5 = c.add_and(g4, ff, "g5");        // reads the FF state
  const NodeId g6 = c.add_not(g5, "g6");
  c.set_fanin(ff, 0, g6);                           // cycle: g6 -> ff -> g5
  c.add_po(g6, "po");
  c.validate();
  return c;
}

TEST(Propagation, Fig2CycleIsBrokenByFfRemoval) {
  const Circuit c = fig2_circuit();
  const CircuitGraph g = build_circuit_graph(c);
  // The comb view levelizes despite the ff <-> logic cycle.
  EXPECT_GT(g.comb.depth, 0);
  // FF at level 0 (pseudo primary input, step 1 of the scheme).
  EXPECT_EQ(g.comb.level[c.find_by_name("ff")], 0);
}

TEST(Propagation, Fig2FfStateEqualsPredecessorStateAfterIteration) {
  // After every iteration the FF's representation must literally be its D
  // predecessor's representation (step 4 = clock edge).
  const Circuit c = fig2_circuit();
  const CircuitGraph graph = build_circuit_graph(c);
  ModelConfig cfg = ModelConfig::deepseq(8, 3);
  const DeepSeqModel model(cfg);
  Workload w;
  w.pi_prob = {0.3, 0.7};
  Graph g(false);
  const nn::Var emb = model.embed(g, graph, w, 42);

  const NodeId ff = c.find_by_name("ff");
  const NodeId g6 = c.find_by_name("g6");
  for (int col = 0; col < cfg.hidden_dim; ++col)
    EXPECT_FLOAT_EQ(emb->value.at(static_cast<int>(ff), col),
                    emb->value.at(static_cast<int>(g6), col));
}

TEST(Propagation, PiEmbeddingsStayAtWorkloadValue) {
  // PIs are initialized to their logic-1 probability in every dimension and
  // never updated (paper §III-B).
  const Circuit c = fig2_circuit();
  const CircuitGraph graph = build_circuit_graph(c);
  const DeepSeqModel model(ModelConfig::deepseq(8, 2));
  Workload w;
  w.pi_prob = {0.25, 0.9};
  Graph g(false);
  const nn::Var emb = model.embed(g, graph, w, 7);
  for (std::size_t k = 0; k < c.pis().size(); ++k) {
    for (int col = 0; col < 8; ++col)
      EXPECT_FLOAT_EQ(emb->value.at(static_cast<int>(c.pis()[k]), col),
                      static_cast<float>(w.pi_prob[k]));
  }
}

TEST(Propagation, WorkloadChangesEmbeddings) {
  const Circuit c = fig2_circuit();
  const CircuitGraph graph = build_circuit_graph(c);
  const DeepSeqModel model(ModelConfig::deepseq(8, 2));
  Workload w1, w2;
  w1.pi_prob = {0.1, 0.1};
  w2.pi_prob = {0.9, 0.9};
  Graph g1(false), g2(false);
  const Tensor e1 = model.embed(g1, graph, w1, 3)->value;
  const Tensor e2 = model.embed(g2, graph, w2, 3)->value;
  const NodeId g5 = c.find_by_name("g5");
  double diff = 0.0;
  for (int col = 0; col < 8; ++col)
    diff += std::abs(e1.at(static_cast<int>(g5), col) - e2.at(static_cast<int>(g5), col));
  EXPECT_GT(diff, 1e-3);
}

TEST(Propagation, MoreIterationsChangeFfState) {
  // T=1 vs T=3: recursion must matter on a cyclic circuit (the FF state
  // keeps integrating new information each round).
  const Circuit c = fig2_circuit();
  const CircuitGraph graph = build_circuit_graph(c);
  ModelConfig c1 = ModelConfig::deepseq(8, 1);
  ModelConfig c3 = ModelConfig::deepseq(8, 3);
  c1.seed = c3.seed = 999;  // identical weights
  const DeepSeqModel m1(c1), m3(c3);
  Workload w;
  w.pi_prob = {0.4, 0.6};
  Graph g1(false), g3(false);
  const Tensor e1 = m1.embed(g1, graph, w, 11)->value;
  const Tensor e3 = m3.embed(g3, graph, w, 11)->value;
  const NodeId ff = c.find_by_name("ff");
  double diff = 0.0;
  for (int col = 0; col < 8; ++col)
    diff += std::abs(e1.at(static_cast<int>(ff), col) - e3.at(static_cast<int>(ff), col));
  EXPECT_GT(diff, 1e-4);
}

TEST(Propagation, BaselineIgnoresFfCopySemantics) {
  // Under the baseline schedule the FF state is NOT a copy of its D
  // predecessor (no step 4) — the distinguishing behaviour of the paper's
  // scheme.
  const Circuit c = fig2_circuit();
  const CircuitGraph graph = build_circuit_graph(c);
  ModelConfig cfg = ModelConfig::dag_rec_gnn(AggregatorKind::kAttention, 8, 3);
  const DeepSeqModel model(cfg);
  Workload w;
  w.pi_prob = {0.3, 0.7};
  Graph g(false);
  const nn::Var emb = model.embed(g, graph, w, 42);
  const NodeId ff = c.find_by_name("ff");
  const NodeId g6 = c.find_by_name("g6");
  double diff = 0.0;
  for (int col = 0; col < 8; ++col)
    diff += std::abs(emb->value.at(static_cast<int>(ff), col) -
                     emb->value.at(static_cast<int>(g6), col));
  EXPECT_GT(diff, 1e-4);
}

TEST(Propagation, FfChainShiftsByOnePerIteration) {
  // Shift register q2 <- q1 <- in-logic: after the copy step, q1 holds the
  // D-logic state and q2 holds q1's *pre-copy* state (two-phase copy).
  Circuit c("shift");
  const NodeId a = c.add_pi("a");
  const NodeId n = c.add_not(a, "n");
  const NodeId q1 = c.add_ff(n, "q1");
  const NodeId q2 = c.add_ff(q1, "q2");
  c.add_po(q2, "po");
  c.validate();
  const CircuitGraph graph = build_circuit_graph(c);
  const DeepSeqModel model(ModelConfig::deepseq(8, 1));  // one iteration
  Workload w;
  w.pi_prob = {0.5};
  Graph g(false);
  const nn::Var emb = model.embed(g, graph, w, 5);
  // After exactly one iteration: q1 = state(n) (post-pass), q2 = old q1
  // (initial random state) — they must differ.
  for (int col = 0; col < 8; ++col)
    EXPECT_FLOAT_EQ(emb->value.at(static_cast<int>(q1), col),
                    emb->value.at(static_cast<int>(n), col));
  double diff = 0.0;
  for (int col = 0; col < 8; ++col)
    diff += std::abs(emb->value.at(static_cast<int>(q2), col) -
                     emb->value.at(static_cast<int>(q1), col));
  EXPECT_GT(diff, 1e-4);
}

TEST(Propagation, DeterministicForSameSeeds) {
  const Circuit c = decompose_to_aig(iscas89_s27()).aig;
  const CircuitGraph graph = build_circuit_graph(c);
  const DeepSeqModel model(ModelConfig::deepseq(8, 2));
  Workload w;
  w.pi_prob = {0.2, 0.4, 0.6, 0.8};
  Graph g1(false), g2(false);
  const Tensor e1 = model.embed(g1, graph, w, 77)->value;
  const Tensor e2 = model.embed(g2, graph, w, 77)->value;
  for (std::size_t i = 0; i < e1.size(); ++i)
    EXPECT_FLOAT_EQ(e1.data()[i], e2.data()[i]);
}

TEST(Propagation, InitSeedOnlyAffectsNonPiNodes) {
  const Circuit c = fig2_circuit();
  const CircuitGraph graph = build_circuit_graph(c);
  const DeepSeqModel model(ModelConfig::deepseq(8, 2));
  Workload w;
  w.pi_prob = {0.3, 0.7};
  Graph g1(false), g2(false);
  const Tensor e1 = model.embed(g1, graph, w, 1)->value;
  const Tensor e2 = model.embed(g2, graph, w, 2)->value;
  for (std::size_t k = 0; k < c.pis().size(); ++k)
    for (int col = 0; col < 8; ++col)
      EXPECT_FLOAT_EQ(e1.at(static_cast<int>(c.pis()[k]), col),
                      e2.at(static_cast<int>(c.pis()[k]), col));
}

}  // namespace
}  // namespace deepseq
