// Reliability analysis (paper §V-B) on one design: Monte-Carlo fault
// simulation provides the ground truth, the masking-aware analytic
// estimator provides the non-learned baseline, and DeepSeq with the
// fine-tuned error-probability head provides the learned estimate.

#include <cstdio>

#include "common/timer.hpp"
#include "core/trainer.hpp"
#include "dataset/training_data.hpp"
#include "reliability/pipeline.hpp"

using namespace deepseq;

int main() {
  WallTimer total;

  // Pre-train a small DeepSeq backbone.
  TrainingDataOptions dopt;
  dopt.num_subcircuits = 12;
  dopt.sim_cycles = 1000;
  dopt.size_scale = 0.5;
  dopt.seed = 11;
  const TrainingDataset ds = build_training_dataset(dopt);
  DeepSeqModel backbone(ModelConfig::deepseq(16, 3));
  {
    TrainOptions topt;
    topt.epochs = 10;
    topt.lr = 2e-3f;
    topt.batch_size = 4;
    Trainer(backbone, topt).fit(ds.samples);
  }
  std::printf("pre-trained backbone on %zu circuits (%.0fs)\n",
              ds.samples.size(), total.seconds());

  // Fine-tune the reliability head on fault-simulation labels.
  ReliabilityPipelineOptions ropt;
  ropt.fault.num_sequences = 256;
  ropt.fault.cycles_per_sequence = 50;
  ropt.fault.gate_error_rate = 0.0005;  // the paper's 0.05%
  ropt.finetune_epochs = 8;
  ropt.finetune_lr = 2e-3f;
  ReliabilityPipeline pipeline(backbone, ropt);
  pipeline.finetune(ds.samples);
  std::printf("fine-tuned the error-probability head (%.0fs)\n", total.seconds());

  const TestDesign design = build_test_design("rtcclock", 1.0 / 16.0, 5);
  Rng rng(13);
  const Workload w = low_activity_workload(design.netlist, rng, 0.3);
  const ReliabilityComparison cmp = pipeline.run(design, w);

  std::printf("\ndesign %s (%zu nodes), gate error rate %.2f%%\n",
              design.name.c_str(), design.netlist.num_nodes(),
              ropt.fault.gate_error_rate * 100);
  std::printf("\n%-26s %12s %8s\n", "method", "reliability", "error");
  std::printf("------------------------------------------------\n");
  std::printf("%-26s %12.4f %8s\n", "Monte-Carlo fault sim", cmp.gt, "-");
  std::printf("%-26s %12.4f %7.2f%%\n", "analytic baseline [32]",
              cmp.probabilistic, cmp.probabilistic_error * 100);
  std::printf("%-26s %12.4f %7.2f%%\n", "DeepSeq (fine-tuned)", cmp.deepseq,
              cmp.deepseq_error * 100);
  std::printf(
      "(absolute errors at this miniature demo scale are noisy — the\n"
      " calibrated comparison is bench/table7_reliability)\n");
  std::printf("\ntotal %.0fs\n", total.seconds());
  return 0;
}
