#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace deepseq::serve {
namespace {

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

Client::Client(std::uint16_t port, const std::string& host) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw Error(std::string("serve::Client: socket(): ") +
                std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw Error("serve::Client: bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    throw Error("serve::Client: cannot connect to " + host + ":" +
                std::to_string(port) + ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  reader_ = std::thread([this] { reader_loop(); });
}

Client::~Client() {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    closed_ = true;
  }
  ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

void Client::fail_all(const std::string& why) {
  std::map<std::uint64_t, Pending> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    closed_ = true;
    pending.swap(pending_);
  }
  for (auto& [id, p] : pending) {
    auto err = std::make_exception_ptr(
        ServeError(ErrorCode::kShuttingDown, why));
    switch (p.kind) {
      case MsgType::kTaskRequest: p.task.set_exception(err); break;
      case MsgType::kReloadRequest: p.reload.set_exception(err); break;
      case MsgType::kStatsRequest: p.stats.set_exception(err); break;
      default: break;
    }
  }
}

void Client::reader_loop() {
  FrameParser parser;
  char buf[64 * 1024];
  std::string why = "connection closed";
  try {
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      parser.feed(buf, static_cast<std::size_t>(n));
      while (auto frame = parser.next()) {
        std::uint64_t id = 0;
        std::exception_ptr error;
        TaskResponseMsg task;
        ReloadResponseMsg reload;
        StatsResponseMsg stats;
        MsgType got = frame->type;
        switch (frame->type) {
          case MsgType::kTaskResponse:
            task = decode_task_response(frame->payload);
            id = task.request_id;
            break;
          case MsgType::kReloadResponse:
            reload = decode_reload_response(frame->payload);
            id = reload.request_id;
            break;
          case MsgType::kStatsResponse:
            stats = decode_stats_response(frame->payload);
            id = stats.request_id;
            break;
          case MsgType::kErrorResponse: {
            ErrorResponseMsg err = decode_error_response(frame->payload);
            id = err.request_id;
            error = std::make_exception_ptr(ServeError(err.code, err.detail));
            break;
          }
          default:
            throw Error("serve::Client: unexpected message type " +
                        std::to_string(static_cast<int>(frame->type)));
        }
        Pending p;
        {
          std::lock_guard<std::mutex> lock(pending_mu_);
          auto it = pending_.find(id);
          // An id we don't know (an error frame with id 0, a duplicate) has
          // no waiter — drop it.
          if (it == pending_.end()) continue;
          p = std::move(it->second);
          pending_.erase(it);
        }
        if (error) {
          switch (p.kind) {
            case MsgType::kTaskRequest: p.task.set_exception(error); break;
            case MsgType::kReloadRequest: p.reload.set_exception(error); break;
            case MsgType::kStatsRequest: p.stats.set_exception(error); break;
            default: break;
          }
          continue;
        }
        if (p.kind == MsgType::kTaskRequest && got == MsgType::kTaskResponse) {
          TaskReply reply;
          reply.result = std::move(task.result);
          reply.shard = static_cast<int>(task.shard);
          p.task.set_value(std::move(reply));
        } else if (p.kind == MsgType::kReloadRequest &&
                   got == MsgType::kReloadResponse) {
          p.reload.set_value(std::move(reload));
        } else if (p.kind == MsgType::kStatsRequest &&
                   got == MsgType::kStatsResponse) {
          p.stats.set_value(std::move(stats));
        } else {
          auto err = std::make_exception_ptr(Error(
              "serve::Client: response type does not match request " +
              std::to_string(id)));
          switch (p.kind) {
            case MsgType::kTaskRequest: p.task.set_exception(err); break;
            case MsgType::kReloadRequest: p.reload.set_exception(err); break;
            case MsgType::kStatsRequest: p.stats.set_exception(err); break;
            default: break;
          }
        }
      }
    }
  } catch (const std::exception& e) {
    why = e.what();
  }
  fail_all(why);
}

void Client::send_or_fail(
    std::uint64_t request_id, const std::string& frame,
    const std::function<void(Pending&, std::exception_ptr)>& fail) {
  bool ok;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    ok = write_all(fd_, frame.data(), frame.size());
  }
  if (ok) return;
  Pending p;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(request_id);
    if (it != pending_.end()) {
      p = std::move(it->second);
      pending_.erase(it);
      found = true;
    }
  }
  // The reader may have raced us and already failed the entry; only fail
  // what we still own.
  if (found)
    fail(p, std::make_exception_ptr(
                Error("serve::Client: connection write failed")));
}

std::future<TaskReply> Client::submit(const api::TaskRequest& request,
                                      std::uint32_t deadline_ms) {
  if (!request.circuit)
    throw Error("serve::Client::submit: request without a circuit");
  TaskRequestMsg msg;
  msg.task = request.task;
  msg.backend = request.backend;
  msg.init_seed = request.init_seed;
  msg.deadline_ms = deadline_ms;
  msg.circuit = *request.circuit;
  msg.workload = request.workload;
  std::future<TaskReply> future;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (closed_)
      throw ServeError(ErrorCode::kShuttingDown, "client is closed");
    msg.request_id = next_id_++;
    Pending& p = pending_[msg.request_id];
    p.kind = MsgType::kTaskRequest;
    future = p.task.get_future();
  }
  send_or_fail(msg.request_id, encode_frame(MsgType::kTaskRequest, encode(msg)),
               [](Pending& p, std::exception_ptr e) {
                 p.task.set_exception(std::move(e));
               });
  return future;
}

TaskReply Client::run(const api::TaskRequest& request,
                      std::uint32_t deadline_ms) {
  return submit(request, deadline_ms).get();
}

std::uint64_t Client::reload(const std::string& artifact_ref,
                             const std::string& backend) {
  ReloadRequestMsg msg;
  msg.backend = backend;
  msg.artifact_ref = artifact_ref;
  std::future<ReloadResponseMsg> future;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (closed_)
      throw ServeError(ErrorCode::kShuttingDown, "client is closed");
    msg.request_id = next_id_++;
    Pending& p = pending_[msg.request_id];
    p.kind = MsgType::kReloadRequest;
    future = p.reload.get_future();
  }
  send_or_fail(msg.request_id,
               encode_frame(MsgType::kReloadRequest, encode(msg)),
               [](Pending& p, std::exception_ptr e) {
                 p.reload.set_exception(std::move(e));
               });
  return future.get().fingerprint;
}

std::string Client::stats_json() {
  StatsRequestMsg msg;
  std::future<StatsResponseMsg> future;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (closed_)
      throw ServeError(ErrorCode::kShuttingDown, "client is closed");
    msg.request_id = next_id_++;
    Pending& p = pending_[msg.request_id];
    p.kind = MsgType::kStatsRequest;
    future = p.stats.get_future();
  }
  send_or_fail(msg.request_id,
               encode_frame(MsgType::kStatsRequest, encode(msg)),
               [](Pending& p, std::exception_ptr e) {
                 p.stats.set_exception(std::move(e));
               });
  return future.get().json;
}

}  // namespace deepseq::serve
