#include "netlist/subcircuit.hpp"

#include <deque>
#include <unordered_set>

#include "common/error.hpp"
#include "netlist/topology.hpp"

namespace deepseq {

Circuit extract_subcircuit(const Circuit& c, std::size_t target_nodes, Rng& rng) {
  if (c.num_nodes() == 0) throw CircuitError("extract_subcircuit: empty circuit");
  const auto fanouts = c.fanouts();

  // Undirected BFS from a random seed until the region reaches target size.
  std::unordered_set<NodeId> region;
  std::deque<NodeId> frontier;
  const NodeId seed = static_cast<NodeId>(rng.uniform_index(c.num_nodes()));
  frontier.push_back(seed);
  region.insert(seed);
  while (!frontier.empty() && region.size() < target_nodes) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    std::vector<NodeId> neighbors;
    for (int i = 0; i < c.num_fanins(v); ++i) neighbors.push_back(c.fanin(v, i));
    for (NodeId u : fanouts[v]) neighbors.push_back(u);
    rng.shuffle(neighbors);
    for (NodeId u : neighbors) {
      if (region.size() >= target_nodes) break;
      if (region.insert(u).second) frontier.push_back(u);
    }
  }

  // Build the closed subcircuit. Kept nodes keep their type; boundary fanins
  // become fresh PIs (one per crossing source node).
  Circuit sub(c.name() + "_sub");
  std::vector<NodeId> map(c.num_nodes(), kNullNode);
  std::vector<NodeId> boundary_pi(c.num_nodes(), kNullNode);
  auto boundary = [&](NodeId src) {
    if (boundary_pi[src] == kNullNode)
      boundary_pi[src] = sub.add_pi("cut_" + std::to_string(src));
    return boundary_pi[src];
  };

  // FFs in the region first (possible feedback), then comb topo order.
  for (NodeId v : c.ffs())
    if (region.count(v)) map[v] = sub.add_ff(kNullNode, c.node_name(v));
  for (NodeId v : comb_topo_order(c)) {
    if (!region.count(v) || map[v] != kNullNode) continue;
    const GateType t = c.type(v);
    if (t == GateType::kPi) {
      map[v] = sub.add_pi(c.node_name(v));
      continue;
    }
    if (t == GateType::kConst0) {
      map[v] = sub.add_const0(c.node_name(v));
      continue;
    }
    std::vector<NodeId> fi;
    for (int i = 0; i < c.num_fanins(v); ++i) {
      const NodeId u = c.fanin(v, i);
      fi.push_back(region.count(u) ? map[u] : boundary(u));
      if (fi.back() == kNullNode)
        throw CircuitError("extract_subcircuit: fanin not yet mapped");
    }
    map[v] = sub.add_gate(t, fi, c.node_name(v));
  }
  for (NodeId v : c.ffs()) {
    if (!region.count(v)) continue;
    const NodeId d = c.fanin(v, 0);
    sub.set_fanin(map[v], 0, region.count(d) ? map[d] : boundary(d));
  }

  // POs: region nodes whose fanout escapes the region or is empty.
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!region.count(v) || c.type(v) == GateType::kPi) continue;
    bool is_po = fanouts[v].empty();
    for (NodeId u : fanouts[v])
      if (!region.count(u)) is_po = true;
    if (is_po) sub.add_po(map[v], "po_" + std::to_string(v));
  }
  if (sub.pos().empty() && !region.empty()) {
    // Degenerate region (all fanout internal): expose the seed.
    if (c.type(seed) != GateType::kPi) sub.add_po(map[seed], "po_seed");
  }

  sub.validate();
  return sub;
}

}  // namespace deepseq
