// End-to-end integration tests: the full paper pipeline at miniature scale —
// dataset synthesis -> pre-training -> model comparison -> both downstream
// tasks. These are the "does the whole system hang together" gates; the
// bench binaries run the same flows at larger scale.

#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "dataset/training_data.hpp"
#include "power/pipeline.hpp"
#include "reliability/pipeline.hpp"

namespace deepseq {
namespace {

TrainingDataset mini_dataset(int n, std::uint64_t seed) {
  TrainingDataOptions opt;
  opt.num_subcircuits = n;
  opt.sim_cycles = 400;
  opt.size_scale = 0.2;
  opt.seed = seed;
  return build_training_dataset(opt);
}

TEST(EndToEnd, PretrainThenCompareModels) {
  const TrainingDataset ds = mini_dataset(8, 1);
  std::vector<TrainSample> train, val;
  split_train_val(ds.samples, 0.25, 3, train, val);

  // Train DeepSeq and one baseline on identical data; both must learn.
  TrainOptions topt;
  topt.epochs = 8;
  topt.lr = 2e-3f;

  DeepSeqModel deepseq(ModelConfig::deepseq(8, 2));
  const EvalMetrics ds_before = evaluate(deepseq, val);
  Trainer(deepseq, topt).fit(train);
  const EvalMetrics ds_after = evaluate(deepseq, val);
  EXPECT_LT(ds_after.avg_pe_lg, ds_before.avg_pe_lg);

  DeepSeqModel baseline(ModelConfig::dag_rec_gnn(AggregatorKind::kAttention, 8, 2));
  Trainer(baseline, topt).fit(train);
  const EvalMetrics bl_after = evaluate(baseline, val);
  // Both produce sane probabilities; no winner asserted at this scale.
  EXPECT_LT(ds_after.avg_pe_tr, 0.5);
  EXPECT_LT(bl_after.avg_pe_tr, 0.5);
}

TEST(EndToEnd, PretrainSaveReloadPredictIdentically) {
  const TrainingDataset ds = mini_dataset(4, 2);
  DeepSeqModel model(ModelConfig::deepseq(8, 2));
  TrainOptions topt;
  topt.epochs = 3;
  Trainer(model, topt).fit(ds.samples);

  const std::string path = ::testing::TempDir() + "/pretrained.bin";
  model.save(path);
  DeepSeqModel reloaded(ModelConfig::deepseq(8, 2));
  reloaded.load(path);
  const Predictions a = predict(model, ds.samples[0]);
  const Predictions b = predict(reloaded, ds.samples[0]);
  for (std::size_t i = 0; i < a.tr.size(); ++i)
    EXPECT_FLOAT_EQ(a.tr.data()[i], b.tr.data()[i]);
}

TEST(EndToEnd, PowerAndReliabilityFromOnePretrainedModel) {
  // One pre-trained backbone feeds both downstream tasks (the paper's
  // transfer-learning claim in miniature).
  const TrainingDataset ds = mini_dataset(6, 3);
  DeepSeqModel pretrained(ModelConfig::deepseq(8, 2));
  TrainOptions topt;
  topt.epochs = 4;
  topt.lr = 2e-3f;
  Trainer(pretrained, topt).fit(ds.samples);

  const TestDesign design = build_test_design("rtcclock", 0.02, 4);
  Rng rng(9);
  const Workload test_w = low_activity_workload(design.netlist, rng, 0.4);

  // Power.
  GranniteConfig gcfg;
  gcfg.hidden_dim = 8;
  GranniteModel grannite(gcfg);
  {
    std::vector<GranniteSample> gs;
    for (const auto& s : ds.samples) gs.push_back(make_grannite_sample(s));
    grannite.fit(gs, 2, 2e-3f);
  }
  PowerPipelineOptions popt;
  popt.gt_sim_cycles = 300;
  popt.finetune_workloads = 2;
  popt.finetune_epochs = 1;
  popt.finetune_sim_cycles = 150;
  const PowerComparison power =
      PowerPipeline(pretrained, grannite, popt).run(design, test_w);
  EXPECT_GT(power.gt_mw, 0.0);
  EXPECT_GT(power.deepseq_mw, 0.0);

  // Reliability.
  ReliabilityPipelineOptions ropt;
  ropt.fault.num_sequences = 128;
  ropt.fault.cycles_per_sequence = 25;
  ropt.fault.gate_error_rate = 0.002;
  ropt.finetune_epochs = 2;
  ReliabilityPipeline rel(pretrained, ropt);
  rel.finetune({ds.samples.begin(), ds.samples.begin() + 3});
  const ReliabilityComparison relcmp = rel.run(design, test_w);
  EXPECT_GT(relcmp.gt, 0.5);
  EXPECT_GT(relcmp.deepseq, 0.0);
}

TEST(EndToEnd, StaticFractionRisesUnderLowActivityWorkload) {
  // The §V-A1 observation: realistic (gated) workloads leave a large part
  // of the design static compared to fully random stimuli.
  const TestDesign design = build_test_design("ac97_ctrl", 0.02, 5);
  Rng rng(11);
  Workload active = random_workload(design.netlist, rng);
  Workload gated = low_activity_workload(design.netlist, rng, 0.2);
  const NodeActivity a = collect_activity(design.netlist, active, {500, 1});
  const NodeActivity g = collect_activity(design.netlist, gated, {500, 1});
  EXPECT_GT(g.static_fraction(), a.static_fraction());
}

}  // namespace
}  // namespace deepseq
