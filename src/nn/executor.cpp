#include "nn/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/env.hpp"
#include "nn/kernels.hpp"
#include "runtime/thread_pool.hpp"

namespace deepseq::nn {

namespace {

// Flushes below this summed work estimate run inline: enlisting pool
// helpers costs a few queue pushes and wakeups, which only pays off for
// real work.
constexpr std::uint64_t kMinParallelFlushWork = 65536;

thread_local Executor* g_current_executor = nullptr;
thread_local ExecStats* g_trace = nullptr;

// ---- forward kernels -------------------------------------------------------
//
// Each kernel computes rows [begin, end) of its op's output (columns for the
// segment reductions; the full output for non-splittable kinds, which the
// planner always emits as a single {0, 0} chunk). The inner-loop order per
// output element matches the sequential kernel exactly, so any chunking —
// including the single full-range chunk of the sequential path — produces
// bit-identical values.

void fwd_elementwise(const Op& op, int b, int e) {
  Tensor& out = op.out->value;
  const int cols = out.cols();
  const std::size_t off = static_cast<std::size_t>(b) * cols;
  const std::size_t count = static_cast<std::size_t>(e - b) * cols;
  float* o = out.data() + off;
  const float* x = op.inputs[0]->value.data() + off;
  switch (op.kind) {
    case OpKind::kAdd:
      kernels::add(o, x, op.inputs[1]->value.data() + off, count);
      break;
    case OpKind::kSub:
      kernels::sub(o, x, op.inputs[1]->value.data() + off, count);
      break;
    case OpKind::kMul:
      kernels::mul(o, x, op.inputs[1]->value.data() + off, count);
      break;
    case OpKind::kScale:
      kernels::scale(o, x, op.scalar, count);
      break;
    case OpKind::kSigmoid:  // scalar libm by design: exp has no exact vector twin
      for (std::size_t i = 0; i < count; ++i) o[i] = 1.0f / (1.0f + std::exp(-x[i]));
      break;
    case OpKind::kTanh:
      for (std::size_t i = 0; i < count; ++i) o[i] = std::tanh(x[i]);
      break;
    case OpKind::kRelu:
      kernels::relu(o, x, count);
      break;
    case OpKind::kOneMinus:
      kernels::one_minus(o, x, count);
      break;
    default:
      break;
  }
}

void fwd_add_row(const Op& op, int b, int e) {
  Tensor& out = op.out->value;
  const Tensor& a = op.inputs[0]->value;
  const float* row = op.inputs[1]->value.row(0);
  const int cols = out.cols();
  for (int r = b; r < e; ++r) kernels::add(out.row(r), a.row(r), row, cols);
}

void fwd_matmul(const Op& op, int b, int e) {
  Tensor& out = op.out->value;  // zero-initialized at record time
  const Tensor& a = op.inputs[0]->value;
  const Tensor& bm = op.inputs[1]->value;
  kernels::matmul_rows(a.data(), a.cols(), bm.data(), bm.cols(), out.data(),
                       out.cols(), b, e, a.cols(), bm.cols());
}

void fwd_mul_col(const Op& op, int b, int e) {
  Tensor& out = op.out->value;
  const Tensor& v = op.inputs[0]->value;
  const Tensor& col = op.inputs[1]->value;
  const int cols = out.cols();
  for (int r = b; r < e; ++r)
    kernels::scale(out.row(r), v.row(r), col.at(r, 0), cols);
}

void fwd_concat_cols(const Op& op, int b, int e) {
  Tensor& out = op.out->value;
  int offset = 0;
  for (const Var& block : op.inputs) {
    const Tensor& bv = block->value;
    for (int r = b; r < e; ++r)
      std::copy(bv.row(r), bv.row(r) + bv.cols(), out.row(r) + offset);
    offset += bv.cols();
  }
}

void fwd_gather(const Op& op, int b, int e) {
  Tensor& out = op.out->value;
  const int cols = out.cols();
  for (int i = b; i < e; ++i) {
    const RowRef& r = op.refs[static_cast<std::size_t>(i)];
    std::copy(r.var->value.row(r.row), r.var->value.row(r.row) + cols, out.row(i));
  }
}

// Copy values rows [b, e) into their slab target rows. Targets are distinct
// (checked at record), so row slices of one scatter write disjoint slab rows;
// readers of the overwritten rows are ordered before the scatter by the
// plan's dependency edges.
void fwd_scatter_rows(const Op& op, int b, int e) {
  const Tensor& values = op.inputs[0]->value;
  const Var& version = op.inputs[1];
  Tensor& base = (version->slab_base != nullptr ? version->slab_base.get()
                                                : version.get())
                     ->value;
  const int cols = values.cols();
  for (int i = b; i < e; ++i)
    std::copy(values.row(i), values.row(i) + cols,
              base.row(op.segment[static_cast<std::size_t>(i)]));
}

// Column range [b, e): output rows are scatter targets, columns independent.
void fwd_segment_sum(const Op& op, int b, int e) {
  Tensor& out = op.out->value;
  const Tensor& v = op.inputs[0]->value;
  for (int row = 0; row < v.rows(); ++row) {
    float* dst = out.row(op.segment[static_cast<std::size_t>(row)]);
    const float* src = v.row(row);
    for (int c = b; c < e; ++c) dst[c] += src[c];
  }
}

void fwd_segment_max(Op& op, int b, int e) {
  Tensor& out = op.out->value;
  const Tensor& v = op.inputs[0]->value;
  const int cols = out.cols();
  for (int row = 0; row < v.rows(); ++row) {
    const int s = op.segment[static_cast<std::size_t>(row)];
    const float* src = v.row(row);
    float* dst = out.row(s);
    for (int c = b; c < e; ++c) {
      int& am = op.argmax[static_cast<std::size_t>(s) * cols + c];
      if (am < 0 || src[c] > dst[c]) {
        dst[c] = src[c];
        am = row;
      }
    }
  }
}

void fwd_segment_softmax(const Op& op) {
  Tensor& out = op.out->value;
  const Tensor& scores = op.inputs[0]->value;
  const int e_count = scores.rows();
  std::vector<float> seg_max(static_cast<std::size_t>(op.num_segments), -1e30f);
  for (int e = 0; e < e_count; ++e)
    seg_max[op.segment[e]] = std::max(seg_max[op.segment[e]], scores.at(e, 0));
  std::vector<double> seg_sum(static_cast<std::size_t>(op.num_segments), 0.0);
  for (int e = 0; e < e_count; ++e) {
    const float x = std::exp(scores.at(e, 0) - seg_max[op.segment[e]]);
    out.at(e, 0) = x;
    seg_sum[op.segment[e]] += x;
  }
  for (int e = 0; e < e_count; ++e)
    out.at(e, 0) = static_cast<float>(out.at(e, 0) / seg_sum[op.segment[e]]);
}

void fwd_l1_loss(Op& op) {
  const Tensor& pred = op.inputs[0]->value;
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    acc += std::fabs(pred.data()[i] - op.attr_a.data()[i]);
  op.out->value.at(0, 0) =
      static_cast<float>(acc / static_cast<double>(op.attr_a.size()));
}

void fwd_l1_loss_weighted(Op& op) {
  const Tensor& pred = op.inputs[0]->value;
  double acc = 0.0, wsum = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    acc += op.attr_b.data()[i] * std::fabs(pred.data()[i] - op.attr_a.data()[i]);
    wsum += op.attr_b.data()[i];
  }
  if (wsum <= 0.0) wsum = 1.0;
  op.out->value.at(0, 0) = static_cast<float>(acc / wsum);
  // The backward kernel divides by float(wsum) exactly as the forward did.
  op.scalar = static_cast<float>(wsum);
}

void fwd_softmax_xent(Op& op) {
  const Tensor& logits = op.inputs[0]->value;
  const int rows = logits.rows(), cols = logits.cols();
  op.saved = Tensor(rows, cols);
  double acc = 0.0;
  for (int r = 0; r < rows; ++r) {
    const float* z = logits.row(r);
    float zmax = z[0];
    for (int c = 1; c < cols; ++c) zmax = std::max(zmax, z[c]);
    double denom = 0.0;
    for (int c = 0; c < cols; ++c) denom += std::exp(static_cast<double>(z[c] - zmax));
    float* p = op.saved.row(r);
    for (int c = 0; c < cols; ++c)
      p[c] = static_cast<float>(std::exp(static_cast<double>(z[c] - zmax)) / denom);
    acc -= std::log(std::max(static_cast<double>(p[op.segment[r]]), 1e-12));
  }
  op.out->value.at(0, 0) = static_cast<float>(acc / rows);
}

void forward_kernel(const Chunk& chunk) {
  Op& op = *chunk.op;
  switch (op.kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kScale:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kRelu:
    case OpKind::kOneMinus:
      fwd_elementwise(op, chunk.begin, chunk.end);
      break;
    case OpKind::kAddRow: fwd_add_row(op, chunk.begin, chunk.end); break;
    case OpKind::kMatmul: fwd_matmul(op, chunk.begin, chunk.end); break;
    case OpKind::kMulCol: fwd_mul_col(op, chunk.begin, chunk.end); break;
    case OpKind::kConcatCols: fwd_concat_cols(op, chunk.begin, chunk.end); break;
    case OpKind::kGather: fwd_gather(op, chunk.begin, chunk.end); break;
    case OpKind::kScatterRows: fwd_scatter_rows(op, chunk.begin, chunk.end); break;
    case OpKind::kSegmentSum: fwd_segment_sum(op, chunk.begin, chunk.end); break;
    case OpKind::kSegmentMax: fwd_segment_max(op, chunk.begin, chunk.end); break;
    case OpKind::kSegmentSoftmax: fwd_segment_softmax(op); break;
    case OpKind::kL1Loss: fwd_l1_loss(op); break;
    case OpKind::kL1LossWeighted: fwd_l1_loss_weighted(op); break;
    case OpKind::kSoftmaxXent: fwd_softmax_xent(op); break;
  }
}

// ---- backward kernels ------------------------------------------------------
//
// One op's backward splits into "parts" (one per gradient target, one per
// block for concat), each with its own parallel extent. Parts are chunkable
// only where scatter destinations are provably disjoint rows/elements; the
// rest (gather's row fan-in, segment_softmax's two-pass reduction, add_row's
// ordered row-vector accumulation) run as one full-range part. Per-element
// accumulation order always matches the sequential pass.

struct BwPart {
  int role = 0;
  int extent = 0;  // 0 = full-range single chunk
  std::uint64_t work = 0;
};

std::vector<BwPart> backward_parts(const Op& op) {
  std::vector<BwPart> parts;
  const Tensor& out = op.out->value;
  const auto grad_needed = [&](std::size_t i) {
    return i < op.inputs.size() && op.inputs[i]->requires_grad;
  };
  switch (op.kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
      if (grad_needed(0))
        parts.push_back({0, out.rows(), static_cast<std::uint64_t>(out.size())});
      if (grad_needed(1))
        parts.push_back({1, out.rows(), static_cast<std::uint64_t>(out.size())});
      break;
    case OpKind::kScale:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kRelu:
    case OpKind::kOneMinus:
      if (grad_needed(0))
        parts.push_back({0, out.rows(), static_cast<std::uint64_t>(out.size())});
      break;
    case OpKind::kAddRow:
      if (grad_needed(0))
        parts.push_back({0, out.rows(), static_cast<std::uint64_t>(out.size())});
      if (grad_needed(1))
        parts.push_back({1, 0, static_cast<std::uint64_t>(out.size())});
      break;
    case OpKind::kMatmul: {
      const std::uint64_t w = 2ull * static_cast<std::uint64_t>(out.rows()) *
                              op.inputs[0]->value.cols() * out.cols();
      if (grad_needed(0)) parts.push_back({0, op.inputs[0]->value.rows(), w});
      if (grad_needed(1)) parts.push_back({1, op.inputs[1]->value.rows(), w});
      break;
    }
    case OpKind::kMulCol:
      if (grad_needed(0))
        parts.push_back({0, out.rows(), static_cast<std::uint64_t>(out.size())});
      if (grad_needed(1))
        parts.push_back({1, out.rows(), static_cast<std::uint64_t>(out.size())});
      break;
    case OpKind::kConcatCols:
      for (std::size_t i = 0; i < op.inputs.size(); ++i)
        if (grad_needed(i))
          parts.push_back({static_cast<int>(i), out.rows(),
                           static_cast<std::uint64_t>(op.inputs[i]->value.size())});
      break;
    case OpKind::kGather:
    case OpKind::kSegmentSoftmax:
      parts.push_back({0, 0, static_cast<std::uint64_t>(out.size())});
      break;
    case OpKind::kScatterRows:
      break;  // slabs are inference-only: no gradients ever flow

    case OpKind::kSegmentSum:
      if (grad_needed(0))
        parts.push_back({0, op.inputs[0]->value.rows(),
                         static_cast<std::uint64_t>(op.inputs[0]->value.size())});
      break;
    case OpKind::kSegmentMax:
      if (grad_needed(0))
        parts.push_back({0, out.rows(),
                         static_cast<std::uint64_t>(op.inputs[0]->value.size())});
      break;
    case OpKind::kL1Loss:
    case OpKind::kL1LossWeighted:
    case OpKind::kSoftmaxXent:
      if (grad_needed(0))
        parts.push_back({0, op.inputs[0]->value.rows(),
                         static_cast<std::uint64_t>(op.inputs[0]->value.size())});
      break;
  }
  return parts;
}

void run_backward_part(Op& op, int role, int b, int e) {
  const Tensor& g = op.out->grad;
  switch (op.kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kScale:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kRelu:
    case OpKind::kOneMinus: {
      const Var& target = op.inputs[role == 1 ? 1 : 0];
      Tensor& tg = target->grad;
      const int cols = op.out->value.cols();
      const std::size_t off = static_cast<std::size_t>(b) * cols;
      const std::size_t count = static_cast<std::size_t>(e - b) * cols;
      float* dst = tg.data() + off;
      const float* gp = g.data() + off;
      switch (op.kind) {
        case OpKind::kAdd:
          kernels::acc_add(dst, gp, count);
          break;
        case OpKind::kSub:
          if (role == 0)
            kernels::acc_add(dst, gp, count);
          else
            kernels::acc_sub(dst, gp, count);
          break;
        case OpKind::kMul:
          kernels::acc_mul(dst, gp, op.inputs[role == 0 ? 1 : 0]->value.data() + off,
                           count);
          break;
        case OpKind::kScale:
          kernels::acc_scale(dst, gp, op.scalar, count);
          break;
        case OpKind::kSigmoid: {
          const float* y = op.out->value.data() + off;
          for (std::size_t i = 0; i < count; ++i)
            dst[i] += gp[i] * y[i] * (1.0f - y[i]);
          break;
        }
        case OpKind::kTanh: {
          const float* y = op.out->value.data() + off;
          for (std::size_t i = 0; i < count; ++i)
            dst[i] += gp[i] * (1.0f - y[i] * y[i]);
          break;
        }
        case OpKind::kRelu: {
          const float* x = target->value.data() + off;
          for (std::size_t i = 0; i < count; ++i)
            if (x[i] > 0.0f) dst[i] += gp[i];
          break;
        }
        case OpKind::kOneMinus:
          kernels::acc_sub(dst, gp, count);
          break;
        default:
          break;
      }
      break;
    }
    case OpKind::kAddRow: {
      if (role == 0) {
        Tensor& tg = op.inputs[0]->grad;
        const int cols = g.cols();
        const std::size_t off = static_cast<std::size_t>(b) * cols;
        const std::size_t count = static_cast<std::size_t>(e - b) * cols;
        kernels::acc_add(tg.data() + off, g.data() + off, count);
      } else {
        Tensor& tg = op.inputs[1]->grad;  // ordered full-range accumulation
        for (int r = 0; r < g.rows(); ++r)
          for (int c = 0; c < g.cols(); ++c) tg.at(0, c) += g.at(r, c);
      }
      break;
    }
    case OpKind::kMatmul: {
      const Tensor& a = op.inputs[0]->value;
      const Tensor& bm = op.inputs[1]->value;
      if (role == 0) {
        // dA += G * B^T, rows [b, e) of A; per-element double accumulation
        // in ascending column order, as matmul_nt_acc does.
        Tensor& ga = op.inputs[0]->grad;
        const int k = g.cols(), n = bm.rows();
        for (int i = b; i < e; ++i) {
          const float* grow = g.row(i);
          float* orow = ga.row(i);
          for (int j = 0; j < n; ++j) {
            const float* brow = bm.row(j);
            double acc = 0.0;
            for (int p = 0; p < k; ++p) acc += grow[p] * brow[p];
            orow[j] += static_cast<float>(acc);
          }
        }
      } else {
        // dB += A^T * G, rows [b, e) of B (= columns of A); per-element
        // accumulation over A's rows in ascending order with the same
        // zero-skip as matmul_tn_acc.
        Tensor& gb = op.inputs[1]->grad;
        const int m = a.rows(), n = g.cols();
        for (int i = b; i < e; ++i) {
          float* orow = gb.row(i);
          for (int p = 0; p < m; ++p) {
            const float av = a.at(p, i);
            if (av == 0.0f) continue;
            kernels::acc_scale(orow, g.row(p), av, static_cast<std::size_t>(n));
          }
        }
      }
      break;
    }
    case OpKind::kMulCol: {
      if (role == 0) {
        Tensor& tg = op.inputs[0]->grad;
        const Tensor& col = op.inputs[1]->value;
        for (int r = b; r < e; ++r) {
          const float a = col.at(r, 0);
          for (int c = 0; c < tg.cols(); ++c) tg.at(r, c) += g.at(r, c) * a;
        }
      } else {
        Tensor& tg = op.inputs[1]->grad;
        const Tensor& v = op.inputs[0]->value;
        for (int r = b; r < e; ++r) {
          double acc = 0.0;
          for (int c = 0; c < g.cols(); ++c)
            acc += static_cast<double>(g.at(r, c)) * v.at(r, c);
          tg.at(r, 0) += static_cast<float>(acc);
        }
      }
      break;
    }
    case OpKind::kConcatCols: {
      int off = 0;
      for (int i = 0; i < role; ++i) off += op.inputs[i]->value.cols();
      Tensor& tg = op.inputs[role]->grad;
      const int bc = op.inputs[role]->value.cols();
      for (int r = b; r < e; ++r)
        kernels::acc_add(tg.row(r), g.row(r) + off, static_cast<std::size_t>(bc));
      break;
    }
    case OpKind::kGather: {
      const int cols = op.out->value.cols();
      for (std::size_t i = 0; i < op.refs.size(); ++i) {
        const RowRef& r = op.refs[i];
        if (!r.var->requires_grad) continue;
        kernels::acc_add(r.var->ensure_grad().row(r.row),
                         g.row(static_cast<int>(i)),
                         static_cast<std::size_t>(cols));
      }
      break;
    }
    case OpKind::kSegmentSoftmax: {
      // ds_e = y_e * (g_e - sum_{e' in seg} g_e' y_e')
      const Tensor& y = op.out->value;
      std::vector<double> seg_dot(static_cast<std::size_t>(op.num_segments), 0.0);
      const int n = y.rows();
      for (int e2 = 0; e2 < n; ++e2)
        seg_dot[op.segment[e2]] +=
            static_cast<double>(g.at(e2, 0)) * y.at(e2, 0);
      Tensor& tg = op.inputs[0]->grad;
      for (int e2 = 0; e2 < n; ++e2)
        tg.at(e2, 0) += y.at(e2, 0) *
                        (g.at(e2, 0) - static_cast<float>(seg_dot[op.segment[e2]]));
      break;
    }
    case OpKind::kSegmentSum: {
      Tensor& tg = op.inputs[0]->grad;
      for (int row = b; row < e; ++row)
        kernels::acc_add(tg.row(row),
                         g.row(op.segment[static_cast<std::size_t>(row)]),
                         static_cast<std::size_t>(tg.cols()));
      break;
    }
    case OpKind::kSegmentMax: {
      // Distinct segments own distinct argmax rows, and columns are sliced
      // per element, so chunking by segment rows scatters disjointly.
      Tensor& tg = op.inputs[0]->grad;
      const int cols = op.out->value.cols();
      for (int s = b; s < e; ++s) {
        const float* src = g.row(s);
        for (int c = 0; c < cols; ++c) {
          const int row = op.argmax[static_cast<std::size_t>(s) * cols + c];
          if (row >= 0) tg.row(row)[c] += src[c];
        }
      }
      break;
    }
    case OpKind::kL1Loss: {
      Tensor& tg = op.inputs[0]->grad;
      const Tensor& pred = op.inputs[0]->value;
      const float s =
          g.at(0, 0) / static_cast<float>(static_cast<double>(op.attr_a.size()));
      const int cols = pred.cols();
      const std::size_t lo = static_cast<std::size_t>(b) * cols;
      const std::size_t hi = static_cast<std::size_t>(e) * cols;
      for (std::size_t i = lo; i < hi; ++i) {
        const float d = pred.data()[i] - op.attr_a.data()[i];
        tg.data()[i] += d > 0.0f ? s : (d < 0.0f ? -s : 0.0f);
      }
      break;
    }
    case OpKind::kL1LossWeighted: {
      Tensor& tg = op.inputs[0]->grad;
      const Tensor& pred = op.inputs[0]->value;
      const float s = g.at(0, 0) / op.scalar;  // scalar = float(wsum), set by forward
      const int cols = pred.cols();
      const std::size_t lo = static_cast<std::size_t>(b) * cols;
      const std::size_t hi = static_cast<std::size_t>(e) * cols;
      for (std::size_t i = lo; i < hi; ++i) {
        const float d = pred.data()[i] - op.attr_a.data()[i];
        tg.data()[i] +=
            op.attr_b.data()[i] * (d > 0.0f ? s : (d < 0.0f ? -s : 0.0f));
      }
      break;
    }
    case OpKind::kSoftmaxXent: {
      Tensor& tg = op.inputs[0]->grad;
      const float s = g.at(0, 0) / static_cast<float>(op.saved.rows());
      for (int r = b; r < e; ++r) {
        const float* p = op.saved.row(r);
        float* dst = tg.row(r);
        for (int c = 0; c < op.saved.cols(); ++c)
          dst[c] += s * (p[c] - (c == op.segment[r] ? 1.0f : 0.0f));
      }
      break;
    }
    default:
      break;
  }
}

bool op_inputs_alias(const Op& op) {
  for (std::size_t i = 0; i < op.inputs.size(); ++i)
    for (std::size_t j = i + 1; j < op.inputs.size(); ++j)
      if (op.inputs[i].get() == op.inputs[j].get()) return true;
  return false;
}

void ensure_input_grads(const Op& op) {
  for (const Var& in : op.inputs)
    if (in->requires_grad) in->ensure_grad();
}

/// Single chunk dispatch, forward or backward. Backward chunks are gated on
/// the op's output having received a gradient — deterministic at this
/// point, because every downstream op ran in an earlier wave.
void run_chunk(const Chunk& chunk) {
  Op& op = *chunk.op;
  switch (chunk.role) {
    case kRoleForward:
      forward_kernel(chunk);
      break;
    case kRolePrep:
      if (op.out->has_grad()) ensure_input_grads(op);
      break;
    case kRoleAll:
      if (op.out->has_grad()) {
        ensure_input_grads(op);
        for (const BwPart& p : backward_parts(op))
          run_backward_part(op, p.role, 0, p.extent);
      }
      break;
    default:
      if (op.out->has_grad())
        run_backward_part(op, chunk.role, chunk.begin, chunk.end);
      break;
  }
}

#if defined(__x86_64__) || defined(__i386__)
inline void cpu_relax() { __builtin_ia32_pause(); }
#else
inline void cpu_relax() {}
#endif

/// Capped exponential backoff with park: a short doubling pause burst, then
/// a few yields, then exponentially lengthening sleeps capped at 128us.
/// Over-subscribed hosts (shards x nn threads) stop burning cycles between
/// claims — a parked waiter costs scheduler wakeups instead of a core —
/// while the common uncontended wait still resolves within the pause burst.
class Backoff {
 public:
  void pause() {
    ++waits_;
    if (waits_ <= kSpinWaits) {
      const int reps = 1 << (waits_ < 7 ? waits_ - 1 : 6);
      for (int i = 0; i < reps; ++i) cpu_relax();
    } else if (waits_ <= kSpinWaits + kYieldWaits) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(park_us_));
      ++parks_;
      if (park_us_ < kMaxParkUs) park_us_ *= 2;
    }
  }
  /// Back to the fast path after useful work; cumulative parks survive so
  /// callers can budget helper lifetime across waits.
  void reset() {
    waits_ = 0;
    park_us_ = kMinParkUs;
  }
  int parks() const { return parks_; }

 private:
  static constexpr int kSpinWaits = 10;
  static constexpr int kYieldWaits = 16;
  static constexpr int kMinParkUs = 4;
  static constexpr int kMaxParkUs = 128;
  int waits_ = 0;
  int parks_ = 0;
  int park_us_ = kMinParkUs;
};

/// Parks a helper may accumulate before handing its core back to the pool.
constexpr int kHelperParkBudget = 16;

/// Shared state of one plan execution. The caller and up to threads-1 pool
/// helpers all drive the same cursor: chain tasks of the current cut are
/// claimed from an atomic index — each claimed chain runs its steps
/// sequentially end to end on the claiming thread — and a spin barrier
/// separates cuts (release on the last task's completion count, acquire by
/// every spinner — so cut N+1 reads cut N's tensor writes safely). Helpers
/// stay hot across the whole plan; with chain fusion the barrier count per
/// flush is an order of magnitude below the old per-wave schedule on deep
/// narrow graphs, so the spinning they do between claims actually buys
/// concurrency instead of burning it.
///
/// Heap-shared: a helper dequeued after the plan completed finds every claim
/// exhausted and every barrier satisfied, zips through, and drops its
/// reference — it never blocks, and it never touches an Op (a task can
/// only be claimed before the caller's final barrier), so the graph may
/// recycle executed ops as soon as the caller returns.
struct ChainDriver {
  Plan plan;
  std::unique_ptr<std::atomic<int>[]> next;
  std::unique_ptr<std::atomic<int>[]> done;

  explicit ChainDriver(Plan p)
      : plan(std::move(p)),
        next(new std::atomic<int>[plan.cuts().size()]),
        done(new std::atomic<int>[plan.cuts().size()]) {
    for (std::size_t i = 0; i < plan.cuts().size(); ++i) {
      next[i].store(0, std::memory_order_relaxed);
      done[i].store(0, std::memory_order_relaxed);
    }
  }

  void drive(bool caller) {
    const std::vector<CutWave>& cuts = plan.cuts();
    const std::vector<ChainTask>& tasks = plan.tasks();
    const Chunk* steps = plan.steps();
    int idle_cuts = 0;
    for (std::size_t w = 0; w < cuts.size(); ++w) {
      const ChainTask* first = tasks.data() + cuts[w].first_task;
      const int n = static_cast<int>(cuts[w].task_count);
      bool claimed = false;
      for (;;) {
        const int i = next[w].fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        claimed = true;
        const ChainTask& t = first[i];
        for (std::uint32_t s = 0; s < t.count; ++s)
          run_chunk(steps[t.first + s]);
        done[w].fetch_add(1, std::memory_order_acq_rel);
      }
      if (!caller) {
        // A helper that keeps claiming nothing returns its core to the
        // pool; the caller finishes regardless. The budget is sized so a
        // helper survives short runs of single-task cuts between a plan's
        // fat cuts, but a long single-task tail (a deep fused backward
        // run) releases it quickly instead of spin/yielding through it.
        idle_cuts = claimed ? 0 : idle_cuts + 1;
        if (idle_cuts >= 32) return;
      }
      Backoff backoff;
      while (done[w].load(std::memory_order_acquire) < n) backoff.pause();
    }
  }
};

/// Shared state of one dependency-counted plan execution. One claim queue
/// (`ready`) covers the whole flush: tasks are published into it the moment
/// their producer countdown hits zero — root tasks up front, the rest
/// released by whichever thread finishes the last producer task — and the
/// caller plus up to threads-1 pool helpers claim slots in publication
/// order. The only global synchronization left is the caller's final wait
/// for `completed == task count`.
///
/// Correctness: a task is published only after every producer task
/// finished (countdown release/acquire chain), so claiming in publication
/// order respects the chain DAG; concurrent tasks write disjoint outputs
/// exactly as under the barrier scheduler, so results stay bit-identical.
///
/// Liveness: slots are claimed in order, so a thread waiting on slot h has
/// slots < h all claimed; published tasks are always claimed-and-run, every
/// finished producer releases its consumers, and roots are pre-published —
/// by induction on the contracted DAG some thread always makes progress,
/// and a claim of slot >= task count (only possible once the plan drained)
/// returns immediately. Helpers may bail only *before* claiming a slot; a
/// claimed slot is always executed, so `completed` reaching the task count
/// — the caller's exit condition — implies every task ran.
///
/// Heap-shared like ChainDriver: a helper dequeued late finds everything
/// claimed, returns, and drops its reference; the caller returns only after
/// every task completed, so ops may be recycled immediately after.
struct DepDriver {
  Plan plan;
  std::unique_ptr<std::atomic<std::uint32_t>[]> pending;  // per DepNode
  std::unique_ptr<std::atomic<std::uint32_t>[]> ready;    // per slot: task id + 1
  std::atomic<std::uint32_t> head{0};
  std::atomic<std::uint32_t> tail{0};
  std::atomic<std::uint32_t> completed{0};

  explicit DepDriver(Plan p)
      : plan(std::move(p)),
        pending(new std::atomic<std::uint32_t>[plan.dep_nodes().size()]),
        ready(new std::atomic<std::uint32_t>[plan.tasks().size()]) {
    const std::vector<DepNode>& nodes = plan.dep_nodes();
    for (std::size_t i = 0; i < plan.tasks().size(); ++i)
      ready[i].store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < nodes.size(); ++i)
      pending[i].store(nodes[i].in_tasks, std::memory_order_relaxed);
    for (std::size_t i = 0; i < nodes.size(); ++i)
      if (nodes[i].in_tasks == 0) publish(static_cast<std::uint32_t>(i));
  }

  void publish(std::uint32_t node) {
    const DepNode& nd = plan.dep_nodes()[node];
    for (std::uint32_t t = 0; t < nd.task_count; ++t) {
      const std::uint32_t slot = tail.fetch_add(1, std::memory_order_relaxed);
      ready[slot].store(nd.first_task + t + 1, std::memory_order_release);
    }
  }

  void finish(std::uint32_t task) {
    const DepNode& nd = plan.dep_nodes()[plan.task_node()[task]];
    const std::vector<std::uint32_t>& consumers = plan.dep_consumers();
    for (std::uint32_t c = nd.consumers_begin; c < nd.consumers_end; ++c) {
      const std::uint32_t peer = consumers[c];
      // acq_rel: the zeroing decrement observes every producer task's
      // writes through the release sequence, so the published tasks may
      // read their inputs without further synchronization.
      if (pending[peer].fetch_sub(1, std::memory_order_acq_rel) == 1)
        publish(peer);
    }
    completed.fetch_add(1, std::memory_order_acq_rel);
  }

  void drive(bool caller) {
    const std::uint32_t n = static_cast<std::uint32_t>(plan.tasks().size());
    const ChainTask* tasks = plan.tasks().data();
    const Chunk* steps = plan.steps();
    Backoff backoff;
    for (;;) {
      if (completed.load(std::memory_order_acquire) >= n) return;
      std::uint32_t h = head.load(std::memory_order_relaxed);
      if (h >= tail.load(std::memory_order_acquire)) {
        // Nothing visibly claimable. Helpers with an exhausted park budget
        // return their core to the pool (never after a claim); the caller
        // waits out the flush.
        if (!caller && backoff.parks() >= kHelperParkBudget) return;
        backoff.pause();
        continue;
      }
      h = head.fetch_add(1, std::memory_order_relaxed);
      if (h >= n) {
        // Overshoot race on the last slots: no task will ever land here.
        if (!caller) return;
        backoff.pause();
        continue;
      }
      // The slot is committed to this thread now: wait out the (rare) gap
      // between the observed tail bump and the publisher's slot store, or
      // between our claim and a racing publisher.
      std::uint32_t enc;
      while ((enc = ready[h].load(std::memory_order_acquire)) == 0)
        backoff.pause();
      backoff.reset();
      const ChainTask& t = tasks[enc - 1];
      for (std::uint32_t s = 0; s < t.count; ++s) run_chunk(steps[t.first + s]);
      finish(enc - 1);
    }
  }
};

}  // namespace

// ---- Executor --------------------------------------------------------------

int nn_threads_from_env(int fallback) {
  const int t = static_cast<int>(env_int("DEEPSEQ_NN_THREADS", fallback));
  return t >= 1 ? t : fallback;
}

bool nn_depsched_from_env() { return env_int("DEEPSEQ_NN_DEPSCHED", 1) != 0; }

Executor::Executor() = default;

Executor::Executor(runtime::ThreadPool* pool, int threads)
    : pool_(pool), threads_(std::max(1, threads)) {
  if (threads_ <= 1) pool_ = nullptr;
}

Executor::~Executor() = default;

Executor& Executor::global() {
  static Executor* e = [] {
    const int hw = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    const int threads = nn_threads_from_env(hw);
    auto* exec = new Executor();
    if (threads > 1) {
      exec->owned_pool_ = std::make_unique<runtime::ThreadPool>(threads);
      exec->pool_ = exec->owned_pool_.get();
      exec->threads_ = threads;
    }
    return exec;
  }();
  return *e;
}

Executor& Executor::current() {
  return g_current_executor != nullptr ? *g_current_executor : global();
}

void Executor::run_plan(Plan plan) {
  if (plan.empty()) return;
  const std::uint32_t max_tasks = plan.max_cut_tasks();
  if (threads_ <= 1 || pool_ == nullptr || max_tasks <= 1 ||
      plan.total_work() < kMinParallelFlushWork) {
    // Inline: tasks are stored grouped by cut, in cut order, and every
    // task's steps are in chain order — walking them flat is a valid
    // topological order and exactly the sequential execution.
    const Chunk* steps = plan.steps();
    for (const ChainTask& t : plan.tasks())
      for (std::uint32_t s = 0; s < t.count; ++s) run_chunk(steps[t.first + s]);
    return;
  }
  const int helpers =
      std::min(threads_ - 1, static_cast<int>(max_tasks) - 1);
  if (nn_depsched_from_env() && plan.dep_linked()) {
    auto driver = std::make_shared<DepDriver>(std::move(plan));
    for (int h = 0; h < helpers; ++h)
      pool_->submit([driver] { driver->drive(false); });
    // The caller participates and returns only after every task completed —
    // the flush's single global sync.
    driver->drive(true);
    return;
  }
  auto driver = std::make_shared<ChainDriver>(std::move(plan));
  for (int h = 0; h < helpers; ++h)
    pool_->submit([driver] { driver->drive(false); });
  // The caller participates and returns only after the last cut's barrier.
  driver->drive(true);
}

void Executor::run(Plan plan) {
  kernels::refresh_from_env();
  if (g_trace == nullptr) {
    run_plan(std::move(plan));
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  g_trace->flushes += 1;
  g_trace->barriers += static_cast<int>(plan.cuts().size());
  g_trace->chains += static_cast<int>(plan.stats().chains);
  g_trace->fused_ops += static_cast<int>(plan.stats().fused_ops);
  g_trace->steps += static_cast<int>(plan.step_count());
  g_trace->slab_gather_rows += static_cast<int>(plan.stats().slab_gather_rows);
  g_trace->slab_scatter_rows +=
      static_cast<int>(plan.stats().slab_scatter_rows);
  g_trace->simd_lanes = kernels::lanes();
  // Scheduler-structural counters: what the selected scheduler pays for
  // this plan, regardless of core count (the inline path executes the same
  // schedule degenerately).
  if (nn_depsched_from_env() && plan.dep_linked()) {
    g_trace->global_syncs += static_cast<int>(plan.global_syncs());
    g_trace->released_chains += static_cast<int>(plan.released_task_count());
  } else {
    g_trace->global_syncs += static_cast<int>(plan.barrier_count());
    if (!plan.cuts().empty())
      g_trace->barriered_chains += static_cast<int>(
          plan.tasks().size() - plan.cuts().front().task_count);
  }
  for (int b = 0; b < kChainHistBuckets; ++b)
    g_trace->chain_len_hist[b] +=
        static_cast<int>(plan.stats().chain_len_hist[b]);
  if (threads_ > 1 && pool_ != nullptr &&
      plan.total_work() >= kMinParallelFlushWork)
    for (const CutWave& c : plan.cuts())
      if (c.task_count > 1) g_trace->parallel_cuts += 1;
  run_plan(std::move(plan));
  g_trace->flush_ms.push_back(std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
}

void Executor::run_backward(const std::vector<Op*>& ops) {
  kernels::refresh_from_env();
  const bool fuse = nn_fuse_from_env();
  Plan plan;
  plan.reserve(ops.size(), ops.size(), ops.size());
  std::vector<int> part_chunks;
  // Open fused run of sequential per-op backward steps: consecutive
  // non-chunkable ops extend it instead of paying a barrier each.
  bool run_open = false;
  for (Op* op : ops) {
    const std::vector<BwPart> parts = backward_parts(*op);
    if (parts.empty()) continue;
    std::uint64_t total = 0;
    for (const BwPart& p : parts) total += p.work;

    // Chunk the parts (shared splitting rule with the forward planner);
    // aliased operands keep the sequential scatter order.
    const bool chunkable = !op_inputs_alias(*op) && threads_ > 1;
    int split_chunks = 0;
    part_chunks.clear();
    if (chunkable)
      for (const BwPart& p : parts) {
        part_chunks.push_back(chunk_count(p.work, p.extent, threads_));
        split_chunks += part_chunks.back();
      }
    if (!chunkable || split_chunks <= 1) {
      // Single-chunk op (or aliasing): prep + every part in one sequential
      // step. Fused mode chains these steps into one task — the op order
      // (and thus every scatter's accumulation order) is unchanged, the
      // run just stops re-synchronizing between ops that were never going
      // to run concurrently anyway.
      if (fuse && run_open) {
        plan.extend_task(Chunk{op, 0, 0, kRoleAll}, total);
      } else {
        plan.add_cut();
        plan.add_task(total);
        plan.add_step(Chunk{op, 0, 0, kRoleAll});
        run_open = true;
      }
      continue;
    }
    run_open = false;
    // Allocate input grads in a cut of their own, before any scatter runs.
    plan.add_cut();
    plan.add_task(1);
    plan.add_step(Chunk{op, 0, 0, kRolePrep});
    plan.add_cut();
    for (std::size_t k = 0; k < parts.size(); ++k) {
      const BwPart& p = parts[k];
      const int nchunks = part_chunks[k];
      const std::uint64_t share =
          p.work / static_cast<std::uint64_t>(nchunks);
      const int base = p.extent / nchunks, rem = p.extent % nchunks;
      int begin = 0;
      for (int i = 0; i < nchunks; ++i) {
        const int len = base + (i < rem ? 1 : 0);
        plan.add_task(share);
        plan.add_step(Chunk{op, begin, begin + len, p.role});
        begin += len;
      }
    }
  }
  // Backward cuts must stay ordered (scatter accumulation order); the
  // sequential cut chain gives the dep scheduler that ordering with one
  // end-of-run sync instead of a barrier per cut.
  plan.link_cuts_sequential();
  run_plan(std::move(plan));
}

// ---- scopes ----------------------------------------------------------------

ExecutorScope::ExecutorScope(Executor& e) : prev_(g_current_executor) {
  g_current_executor = &e;
}

ExecutorScope::~ExecutorScope() { g_current_executor = prev_; }

ExecTraceScope::ExecTraceScope(ExecStats& stats) : prev_(g_trace) {
  g_trace = &stats;
}

ExecTraceScope::~ExecTraceScope() { g_trace = prev_; }

}  // namespace deepseq::nn
