// Ablation: power-estimation error vs fine-tuning budget and workload
// distribution (paper §V-A1 — "after fine-tuning with 1,000 different
// workloads on a circuit, DeepSeq can generalize to arbitrary workloads").
//
// Sweeps (a) the number of fine-tuning workloads/epochs and (b) the
// distribution they are drawn from, on one test design, and reports the
// Table V error averaged over several held-out test workloads. It
// demonstrates *why* fine-tuning is needed on out-of-distribution large
// circuits — at tiny budgets the L1 objective leaves per-node predictions
// near the target median (~0 under low-activity workloads) and power is
// badly underestimated — and how errors fall as the budget grows toward
// the paper's protocol. Design selectable via DEEPSEQ_ABL_DESIGN
// (default: ptc).

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "power/pipeline.hpp"

int main() {
  using namespace deepseq;
  using namespace deepseq::bench;

  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("ABLATION", "power error vs fine-tuning budget/distribution",
               cfg);

  const std::string design_name = env_string("DEEPSEQ_ABL_DESIGN", "ptc");
  const TestDesign design =
      build_test_design(design_name, cfg.design_scale, cfg.eval_seed);
  std::printf("[setup] design %s: %zu nodes\n", design.name.c_str(),
              design.netlist.num_nodes());

  const DeepSeqModel deepseq_model = pretrained_deepseq(cfg);
  const GranniteModel grannite_model = pretrained_grannite(cfg);

  // Held-out test workloads in the Tables V/VI style (low-activity).
  const int kTestWorkloads = 3;
  std::vector<Workload> tests;
  Rng wl_rng(cfg.eval_seed + 1);
  for (int i = 0; i < kTestWorkloads; ++i)
    tests.push_back(low_activity_workload(design.netlist, wl_rng,
                                          cfg.workload_active_fraction));

  struct Budget {
    int workloads, epochs;
  };
  const Budget budgets[] = {{4, 4}, {8, 8}, {16, 12}, {24, 16}};
  const FinetuneDist dists[] = {FinetuneDist::kLowActivity,
                                FinetuneDist::kUniform, FinetuneDist::kMixed};

  std::printf("\n%-13s %9s %7s | %9s %8s | %9s %8s\n", "ft dist",
              "workloads", "epochs", "Grannite", "Err", "DeepSeq", "Err");
  std::printf("%.*s\n", 78, std::string(78, '-').c_str());
  for (const FinetuneDist dist : dists) {
    for (const Budget& b : budgets) {
      WallTimer t;
      PowerPipelineOptions popt;
      popt.gt_sim_cycles = cfg.gt_cycles;
      popt.finetune_workloads = b.workloads;
      popt.finetune_epochs = b.epochs;
      popt.finetune_sim_cycles = cfg.ft_cycles;
      popt.finetune_lr = cfg.ft_lr;
      popt.finetune_dist = dist;
      popt.finetune_active_fraction = cfg.workload_active_fraction;
      popt.balanced_finetune = !cfg.full;
      PowerPipeline pipeline(deepseq_model, grannite_model, popt);
      const auto rows = pipeline.run_workloads(design, tests);
      double gran = 0.0, ds = 0.0;
      for (const PowerComparison& cmp : rows) {
        gran += cmp.grannite_error / rows.size();
        ds += cmp.deepseq_error / rows.size();
      }
      std::printf("%-13s %9d %7d | %9s %7.2f%% | %9s %7.2f%%  [%.0fs]\n",
                  finetune_dist_name(dist), b.workloads, b.epochs, "",
                  100.0 * gran, "", 100.0 * ds, t.seconds());
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n(errors averaged over %d held-out low-activity test workloads; the\n"
      " paper's protocol uses 1000 fine-tuning workloads)\n",
      kTestWorkloads);
  return 0;
}
