#include "reliability/reliability_model.hpp"

#include <numeric>

#include "nn/adam.hpp"

namespace deepseq {

using nn::Graph;
using nn::Var;

ReliabilitySample make_reliability_sample(TrainSample base,
                                          const FaultSimOptions& opt) {
  ReliabilitySample s;
  const FaultSimResult fr = simulate_faults(*base.circuit, base.workload, opt);
  const int n = base.graph.num_nodes;
  s.target_err = nn::Tensor(n, 2);
  for (int v = 0; v < n; ++v) {
    s.target_err.at(v, 0) = static_cast<float>(fr.err01[v]);
    s.target_err.at(v, 1) = static_cast<float>(fr.err10[v]);
  }
  s.base = std::move(base);
  return s;
}

ReliabilityModel::ReliabilityModel(const DeepSeqModel& pretrained)
    : backbone_(pretrained.config()) {
  backbone_.copy_params_from(pretrained);
  Rng rng(pretrained.config().seed ^ 0xE77Au);
  const int d = pretrained.config().hidden_dim;
  err_head_ = nn::Mlp({d, d, d, 2}, nn::Activation::kSigmoid, rng, "err_head");
}

Var ReliabilityModel::forward(Graph& g, const CircuitGraph& graph,
                              const Workload& w, std::uint64_t init_seed) const {
  return err_head_.apply(g, backbone_.embed(g, graph, w, init_seed));
}

void ReliabilityModel::fit(const std::vector<ReliabilitySample>& samples,
                           int epochs, float lr, std::uint64_t shuffle_seed) {
  nn::Adam adam(params(), nn::AdamOptions{lr, 0.9f, 0.999f, 1e-8f, 5.0f});
  Rng rng(shuffle_seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    int in_batch = 0;
    adam.zero_grad();
    for (std::size_t i = 0; i < order.size(); ++i) {
      const ReliabilitySample& s = samples[order[i]];
      Graph g(true);
      const Var pred =
          forward(g, s.base.graph, s.base.workload, s.base.init_seed);
      const Var loss = g.l1_loss(pred, s.target_err);
      g.backward(loss);
      if (++in_batch >= 16 || i + 1 == order.size()) {
        adam.step();
        adam.zero_grad();
        in_batch = 0;
      }
    }
  }
}

ReliabilityModel::Estimate ReliabilityModel::estimate(
    const CircuitGraph& graph, const Workload& w,
    const std::vector<NodeId>& pos, std::uint64_t init_seed) const {
  Graph g(false);
  const Var emb = backbone_.embed(g, graph, w, init_seed);
  const Var err = err_head_.apply(g, emb);
  const auto lg = backbone_.regress(g, emb).lg;

  Estimate est;
  est.node_reliability.resize(static_cast<std::size_t>(graph.num_nodes));
  for (int v = 0; v < graph.num_nodes; ++v) {
    const double p1 = lg->value.at(v, 0);
    const double e01 = err->value.at(v, 0);
    const double e10 = err->value.at(v, 1);
    est.node_reliability[v] = p1 * (1.0 - e10) + (1.0 - p1) * (1.0 - e01);
  }
  if (!pos.empty()) {
    double sum = 0.0;
    for (NodeId po : pos) sum += est.node_reliability[po];
    est.circuit_reliability = sum / static_cast<double>(pos.size());
  }
  return est;
}

nn::NamedParams ReliabilityModel::params() const {
  nn::NamedParams out = backbone_.params();
  err_head_.collect_params(out);
  return out;
}

nn::NamedParams ReliabilityModel::head_params() const {
  nn::NamedParams out;
  err_head_.collect_params(out);
  return out;
}

}  // namespace deepseq
