#include "power/cell_library.hpp"

namespace deepseq {

const CellLibrary& default_cell_library() {
  static const CellLibrary lib{};
  return lib;
}

}  // namespace deepseq
