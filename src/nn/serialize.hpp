#pragma once

#include <string>

#include "nn/modules.hpp"

namespace deepseq::nn {

/// Save named parameters to a simple binary format (magic, count, then
/// name/rows/cols/float data per entry). Used to persist pre-trained
/// DeepSeq weights between the pre-training and fine-tuning stages.
void save_params(const std::string& path, const NamedParams& params);

/// Load parameters saved with save_params into matching Vars (matched by
/// name; shapes must agree). Throws Error on missing names or shape
/// mismatch; entries present in the file but absent from `params` are
/// ignored, so a fine-tuning model with an extra head can load a
/// pre-trained backbone.
void load_params(const std::string& path, const NamedParams& params);

}  // namespace deepseq::nn
