#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/workload.hpp"

namespace deepseq {

/// Monte-Carlo transient/intermittent fault simulation (paper §V-B1): the
/// circuit is simulated fault-free and in parallel with per-gate random
/// output flips at `gate_error_rate` per cycle; faulty values propagate and
/// are captured by FFs (state corruption across cycles). The comparison of
/// both runs yields per-node conditional error probabilities and the
/// circuit-level reliability figure of Table VII.
struct FaultSimOptions {
  int num_sequences = 1000;     // independent runs (paper: 1000 patterns)
  int cycles_per_sequence = 100;
  double gate_error_rate = 0.0005;  // 0.05% per gate per cycle
  bool inject_ff = false;           // also flip FF captured values
};

struct FaultSimResult {
  /// P(faulty = 1 | golden = 0), per node — the 0->1 error probability.
  std::vector<double> err01;
  /// P(faulty = 0 | golden = 1), per node — the 1->0 error probability.
  std::vector<double> err10;
  /// Per-node probability of matching the golden value.
  std::vector<double> node_reliability;
  /// Mean over primary outputs and cycles of P(faulty == golden) — the
  /// "GT" reliability column of Table VII.
  double circuit_reliability = 1.0;
};

FaultSimResult simulate_faults(const Circuit& c, const Workload& w,
                               const FaultSimOptions& opt = {});

}  // namespace deepseq
