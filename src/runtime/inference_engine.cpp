#include "runtime/inference_engine.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.hpp"

namespace deepseq::runtime {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0,
                std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Process-wide scheduler metrics (looked up once; recording is lock-free).
/// The queue-depth gauge tracks the pending window right now; the
/// same-named histogram records the depth observed at every enqueue, so a
/// snapshot delta yields the depth *distribution* a load level produced.
struct EngineMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Gauge& queue_depth = reg.gauge("engine.queue_depth");
  obs::Histogram& queue_depth_hist = reg.histogram("engine.queue_depth");
  obs::Counter& batches = reg.counter("engine.batches");
  obs::Histogram& batch_size = reg.histogram("engine.batch_size");
  // Chain-executor work folded out of nn::ExecStats per traced embed.
  obs::Counter& nn_chains = reg.counter("nn.chains");
  obs::Counter& nn_barriers = reg.counter("nn.barriers");
  obs::Counter& nn_steps = reg.counter("nn.steps");
  // Dependency-counted scheduling: global syncs the active scheduler paid
  // and chain tasks released by finishing producers (vs. held at barriers).
  obs::Counter& nn_global_syncs = reg.counter("nn.global_syncs");
  obs::Counter& nn_released_chains = reg.counter("nn.released_chains");
  // State-slab traffic: rows gathered from / scattered into state slabs.
  obs::Counter& nn_slab_rows = reg.counter("nn.slab_rows");
  static EngineMetrics& get() {
    static EngineMetrics m;
    return m;
  }
};

obs::TraceEvent make_span(const char* name, std::uint64_t t0, std::uint64_t t1,
                          const obs::TaskContext& ctx, std::uint64_t structure) {
  obs::TraceEvent e;
  e.name = name;
  e.ts_ns = t0;
  e.dur_ns = t1 > t0 ? t1 - t0 : 0;
  e.ctx = ctx;
  e.structure = structure;
  return e;
}

}  // namespace

InferenceEngine::InferenceEngine(const EngineConfig& config)
    : config_(config),
      cache_(config.cache),
      pool_(config.threads),
      nn_exec_(&pool_,
               config.nn_threads > 0
                   ? config.nn_threads
                   : nn::nn_threads_from_env(pool_.num_threads())) {
  config_.max_batch = std::max(1, config_.max_batch);
  flusher_ = std::thread([this] { flusher_loop(); });
}

InferenceEngine::~InferenceEngine() {
  drain();
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    stop_ = true;
  }
  pending_cv_.notify_all();
  flusher_.join();
}

void InferenceEngine::enqueue(std::unique_ptr<Pending> pending) {
  // Fail fast on the calling thread: a null circuit would otherwise crash
  // a worker inside the batch's hash computation, before any future could
  // carry the error.
  if (pending->request.circuit == nullptr)
    throw Error("InferenceEngine: request without a circuit");
  pending->enqueued = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.push_back(std::move(pending));
  auto& metrics = EngineMetrics::get();
  metrics.queue_depth.set(static_cast<std::int64_t>(pending_.size()));
  metrics.queue_depth_hist.record(pending_.size());
  if (static_cast<int>(pending_.size()) >= config_.max_batch) {
    std::vector<std::unique_ptr<Pending>> batch;
    batch.swap(pending_);
    metrics.queue_depth.set(0);
    dispatch_batch(std::move(batch));
  }
}

void InferenceEngine::flush() {
  std::lock_guard<std::mutex> lock(pending_mu_);
  std::vector<std::unique_ptr<Pending>> batch;
  batch.swap(pending_);
  EngineMetrics::get().queue_depth.set(0);
  if (!batch.empty()) dispatch_batch(std::move(batch));
}

void InferenceEngine::drain() {
  flush();
  pool_.wait_idle();
}

void InferenceEngine::flusher_loop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      std::max(0.1, config_.flush_interval_ms));
  std::unique_lock<std::mutex> lock(pending_mu_);
  while (!stop_) {
    pending_cv_.wait_for(lock, interval);
    if (pending_.empty()) continue;
    const auto now = std::chrono::steady_clock::now();
    if (now - pending_.front()->enqueued < interval) continue;
    std::vector<std::unique_ptr<Pending>> batch;
    batch.swap(pending_);
    EngineMetrics::get().queue_depth.set(0);
    dispatch_batch(std::move(batch));
  }
}

// Caller must hold pending_mu_: handing the batch to the pool before the
// lock is released is what lets drain() (= flush() + wait_idle()) observe
// every submitted request — a batch can never sit swapped-out but not yet
// in the pool queue while pending_ looks empty.
void InferenceEngine::dispatch_batch(
    std::vector<std::unique_ptr<Pending>> batch) {
  {
    auto& metrics = EngineMetrics::get();
    metrics.batches.inc();
    metrics.batch_size.record(batch.size());
  }
  // Coalesce: group the batch by circuit identity so one worker resolves
  // each distinct structure (and its hashes) exactly once while distinct
  // circuits fan out across the pool in parallel.
  std::map<const Circuit*, std::vector<std::unique_ptr<Pending>>> groups;
  for (auto& p : batch) groups[p->request.circuit.get()].push_back(std::move(p));
  for (auto& [circuit, group] : groups) {
    (void)circuit;
    auto shared_group = std::make_shared<
        std::vector<std::unique_ptr<Pending>>>(std::move(group));
    pool_.submit([this, shared_group] {
      // Forward passes (and completion hooks, e.g. the api layer's task
      // heads) run under the engine's intra-circuit executor: large kernels
      // fan out over the same pool this worker came from.
      nn::ExecutorScope nn_scope(nn_exec_);
      // One hash computation serves the whole group (same Circuit object).
      const Circuit& c = *(*shared_group)[0]->request.circuit;
      const CircuitHashes hashes{structural_hash(c), exact_hash(c)};
      for (auto& p : *shared_group) {
        try {
          p->deliver(process(p->request, p->enqueued, hashes));
        } catch (...) {
          obs::count_task_failed(p->request.trace.kind);
          p->fail(std::current_exception());
        }
      }
    });
  }
}

std::shared_ptr<const api::BackendState> InferenceEngine::resolve_structure(
    const api::EmbeddingBackend& backend, const Circuit& circuit,
    const StructureKey& key, bool* hit) {
  bool miss = false;
  auto structure = cache_.get_or_build_structure(key, [&] {
    miss = true;
    return backend.prepare(circuit);
  });
  *hit = !miss;
  return structure;
}

EmbeddingResult InferenceEngine::process(
    const EmbeddingRequest& request,
    std::chrono::steady_clock::time_point enqueued,
    const CircuitHashes& hashes) {
  if (request.backend == nullptr)
    throw Error("InferenceEngine: request without a backend");
  const api::EmbeddingBackend& backend = *request.backend;
  const std::uint64_t fingerprint = backend.info().fingerprint;

  const auto start = std::chrono::steady_clock::now();
  EmbeddingResult result;
  result.backend = request.backend;
  result.trace = request.trace;
  result.queue_ms = ms_since(enqueued, start);

  result.structure = hashes.structural;
  const StructureKey skey{hashes.structural, hashes.exact, fingerprint};

  // Tracing is per-task: only requests carrying a Session-assigned context
  // record spans (and only while the global switch is on — one relaxed
  // load on the disabled path, no extra clock reads).
  const bool tracing = request.trace.kind != nullptr && obs::tracing_enabled();
  const std::uint64_t digest = hashes.structural.digest;
  if (tracing)
    obs::TraceSink::global().record(
        make_span("queue", obs::to_trace_ns(enqueued), obs::to_trace_ns(start),
                  request.trace, digest));

  EmbeddingKey ekey;
  ekey.structure = hashes.structural;
  ekey.exact = hashes.exact;
  ekey.backend_fingerprint = fingerprint;
  ekey.workload_fingerprint = workload_fingerprint(request.workload);
  ekey.init_seed = request.init_seed;
  result.key = ekey;

  // Timed, traced structure resolve ("resolve" span; hit/miss as an arg).
  const auto traced_resolve = [&] {
    const std::uint64_t t0 = tracing ? obs::trace_now_ns() : 0;
    auto structure = resolve_structure(backend, *request.circuit, skey,
                                       &result.structure_cache_hit);
    if (tracing) {
      obs::TraceEvent e = make_span("resolve", t0, obs::trace_now_ns(),
                                    request.trace, digest);
      e.arg_name[0] = "cache_hit";
      e.arg[0] = result.structure_cache_hit ? 1 : 0;
      obs::TraceSink::global().record(e);
    }
    return structure;
  };

  const auto finish_cached = [&](std::shared_ptr<const nn::Tensor> cached) {
    result.embedding = std::move(cached);
    result.embedding_cache_hit = true;
    if (request.want_state) result.state = traced_resolve();
    result.total_ms = ms_since(enqueued, std::chrono::steady_clock::now());
    return result;
  };

  if (request.want_embedding && config_.cache_embeddings) {
    if (auto cached = cache_.get_embedding(ekey)) return finish_cached(cached);
  }

  // Requests wanting neither the forward pass nor the state (e.g. the
  // testability task, which reads the circuit alone) skip prepare entirely.
  if (request.want_embedding || request.want_state) {
    const auto structure = traced_resolve();
    if (request.want_state) result.state = structure;

    if (request.want_embedding) {
      // The "embed" span folds the chain executor's work (nn::ExecStats)
      // into the task trace: flushes, fused chains, barriers, kernel steps,
      // scheduler global syncs, released chains, slab rows, simd lanes.
      // The per-flush stats collection itself is gated on tracing so the
      // disabled path stays free of extra clock reads.
      const std::uint64_t t0 = tracing ? obs::trace_now_ns() : 0;
      std::shared_ptr<const nn::Tensor> embedding;
      nn::ExecStats exec_stats;
      if (tracing) {
        nn::ExecTraceScope exec_trace(exec_stats);
        embedding = std::make_shared<const nn::Tensor>(
            backend.embed(*structure, request.workload, request.init_seed));
      } else {
        embedding = std::make_shared<const nn::Tensor>(
            backend.embed(*structure, request.workload, request.init_seed));
      }
      if (tracing) {
        auto& metrics = EngineMetrics::get();
        metrics.nn_chains.inc(static_cast<std::uint64_t>(exec_stats.chains));
        metrics.nn_barriers.inc(
            static_cast<std::uint64_t>(exec_stats.barriers));
        metrics.nn_steps.inc(static_cast<std::uint64_t>(exec_stats.steps));
        metrics.nn_global_syncs.inc(
            static_cast<std::uint64_t>(exec_stats.global_syncs));
        metrics.nn_released_chains.inc(
            static_cast<std::uint64_t>(exec_stats.released_chains));
        metrics.nn_slab_rows.inc(
            static_cast<std::uint64_t>(exec_stats.slab_gather_rows +
                                       exec_stats.slab_scatter_rows));
        obs::TraceEvent e =
            make_span("embed", t0, obs::trace_now_ns(), request.trace, digest);
        e.arg_name[0] = "chains";
        e.arg[0] = exec_stats.chains;
        e.arg_name[1] = "barriers";
        e.arg[1] = exec_stats.barriers;
        e.arg_name[2] = "steps";
        e.arg[2] = exec_stats.steps;
        e.arg_name[3] = "flushes";
        e.arg[3] = exec_stats.flushes;
        e.arg_name[4] = "global_syncs";
        e.arg[4] = exec_stats.global_syncs;
        e.arg_name[5] = "released_chains";
        e.arg[5] = exec_stats.released_chains;
        e.arg_name[6] = "slab_rows";
        e.arg[6] = exec_stats.slab_gather_rows + exec_stats.slab_scatter_rows;
        e.arg_name[7] = "simd_lanes";
        e.arg[7] = exec_stats.simd_lanes;
        obs::TraceSink::global().record(e);
      }
      if (config_.cache_embeddings) cache_.put_embedding(ekey, embedding);
      result.embedding = std::move(embedding);
    }
  }

  const auto end = std::chrono::steady_clock::now();
  result.compute_ms = ms_since(start, end);
  result.total_ms = ms_since(enqueued, end);
  return result;
}

EmbeddingResult InferenceEngine::run_sync(const EmbeddingRequest& request) {
  if (request.circuit == nullptr)
    throw Error("InferenceEngine: request without a circuit");
  nn::ExecutorScope nn_scope(nn_exec_);
  const CircuitHashes hashes{structural_hash(*request.circuit),
                             exact_hash(*request.circuit)};
  return process(request, std::chrono::steady_clock::now(), hashes);
}

std::shared_ptr<const api::Regression> InferenceEngine::regress_cached(
    const EmbeddingKey& key, const api::EmbeddingBackend& backend,
    const nn::Tensor& embedding, bool* cache_hit) {
  nn::ExecutorScope nn_scope(nn_exec_);
  if (!config_.cache_embeddings) {
    // Reference / cold-path mode: no derived caching either.
    if (cache_hit != nullptr) *cache_hit = false;
    return std::make_shared<const api::Regression>(backend.regress(embedding));
  }
  bool miss = false;
  auto reg = cache_.get_or_build_regression(key, [&] {
    miss = true;
    return std::make_shared<const api::Regression>(backend.regress(embedding));
  });
  if (cache_hit != nullptr) *cache_hit = !miss;
  return reg;
}

}  // namespace deepseq::runtime
