#include "nn/plan.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/env.hpp"

namespace deepseq::nn {

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kAddRow: return "add_row";
    case OpKind::kMatmul: return "matmul";
    case OpKind::kScale: return "scale";
    case OpKind::kSigmoid: return "sigmoid";
    case OpKind::kTanh: return "tanh";
    case OpKind::kRelu: return "relu";
    case OpKind::kOneMinus: return "one_minus";
    case OpKind::kConcatCols: return "concat_cols";
    case OpKind::kGather: return "gather";
    case OpKind::kScatterRows: return "scatter_rows";
    case OpKind::kSegmentSoftmax: return "segment_softmax";
    case OpKind::kMulCol: return "mul_col";
    case OpKind::kSegmentSum: return "segment_sum";
    case OpKind::kSegmentMax: return "segment_max";
    case OpKind::kL1Loss: return "l1_loss";
    case OpKind::kL1LossWeighted: return "l1_loss_weighted";
    case OpKind::kSoftmaxXent: return "softmax_cross_entropy";
  }
  return "?";
}

std::uint64_t op_work(const Op& op) {
  const Tensor& out = op.out->value;
  switch (op.kind) {
    case OpKind::kScatterRows:
      // The output Var is an empty version marker; the moved data is the
      // values operand.
      return static_cast<std::uint64_t>(op.inputs[0]->value.size());
    case OpKind::kMatmul:
      return 2ull * static_cast<std::uint64_t>(out.rows()) *
             static_cast<std::uint64_t>(op.inputs[0]->value.cols()) * out.cols();
    case OpKind::kSegmentSum:
    case OpKind::kSegmentMax:
    case OpKind::kL1Loss:
    case OpKind::kL1LossWeighted:
    case OpKind::kSegmentSoftmax:
      return static_cast<std::uint64_t>(op.inputs[0]->value.size());
    case OpKind::kSoftmaxXent:
      // exp-heavy: weight the per-element cost up so it counts as real work.
      return 8ull * static_cast<std::uint64_t>(op.inputs[0]->value.size());
    case OpKind::kSigmoid:
    case OpKind::kTanh:
      return 4ull * static_cast<std::uint64_t>(out.size());
    default:
      return static_cast<std::uint64_t>(out.size());
  }
}

int op_parallel_extent(const Op& op) {
  switch (op.kind) {
    case OpKind::kScatterRows:
      return op.inputs[0]->value.rows();  // out is an empty version marker
    case OpKind::kSegmentSum:
    case OpKind::kSegmentMax:
      return op.out->value.cols();
    case OpKind::kSegmentSoftmax:
    case OpKind::kL1Loss:
    case OpKind::kL1LossWeighted:
    case OpKind::kSoftmaxXent:
      return 0;  // scalar reduction / ordered accumulation: one chunk
    default:
      return op.out->value.rows();
  }
}

int chunk_count(std::uint64_t work, int extent, int threads) {
  if (threads <= 1 || extent <= 1) return 1;
  const int cap = std::min(threads, extent);
  return std::max(1, static_cast<int>(std::min<std::uint64_t>(
                         work / kSplitWork, static_cast<std::uint64_t>(cap))));
}

bool nn_fuse_from_env() { return env_int("DEEPSEQ_NN_FUSE", 1) != 0; }

int chain_len_bucket(int len) {
  if (len <= 1) return 0;
  if (len <= 4) return len - 1;
  if (len <= 8) return 4;
  if (len <= 16) return 5;
  if (len <= 32) return 6;
  return 7;
}

const char* chain_len_bucket_name(int bucket) {
  static const char* const kNames[kChainHistBuckets] = {
      "1", "2", "3", "4", "5-8", "9-16", "17-32", "33+"};
  return (bucket >= 0 && bucket < kChainHistBuckets) ? kNames[bucket] : "?";
}

namespace {

/// Kinds whose output row r reads only row r of chain-internal inputs, so a
/// chain of them over equal row counts may be split into row-range tasks
/// (matmul's B operand, add_row's row vector and every gather input must be
/// chain-external — checked separately at fuse time).
bool row_aligned_kind(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kAddRow:
    case OpKind::kMatmul:
    case OpKind::kScale:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kRelu:
    case OpKind::kOneMinus:
    case OpKind::kConcatCols:
    case OpKind::kGather:
    case OpKind::kMulCol:
    // Values row i goes to slab row segment[i]: rows of the values operand
    // are read row-aligned and target rows are distinct, so a row slice of
    // the scatter writes a private set of slab rows. (The version/reader
    // operands must stay chain-external — enforced via the forbid list.)
    case OpKind::kScatterRows:
      return true;
    default:
      return false;
  }
}

/// Rows of the op's row-parallel axis for chain alignment: the output rows,
/// except scatter_rows whose axis is the values operand (its out is empty).
int op_chain_rows(const Op& op) {
  return op.kind == OpKind::kScatterRows ? op.inputs[0]->value.rows()
                                         : op.out->value.rows();
}

/// Emit one unfused op as PR 3 did: its chunks become single-step tasks of
/// the current cut (so intra-op row/column parallelism is preserved).
void emit_single_op(Plan& plan, Op* op, std::uint64_t work, int threads) {
  const int extent = op_parallel_extent(*op);
  if (extent <= 0) {
    plan.add_task(work);
    plan.add_step(Chunk{op, 0, 0, kRoleForward});
    return;
  }
  const int chunks = chunk_count(work, extent, threads);
  const std::uint64_t share = work / static_cast<std::uint64_t>(chunks);
  const int base = extent / chunks, rem = extent % chunks;
  int begin = 0;
  for (int i = 0; i < chunks; ++i) {
    const int len = base + (i < rem ? 1 : 0);
    plan.add_task(share);
    plan.add_step(Chunk{op, begin, begin + len, kRoleForward});
    begin += len;
  }
}

}  // namespace

std::uint64_t Plan::total_work() const {
  std::uint64_t total = 0;
  for (const CutWave& c : cuts_) total += c.work;
  return total;
}

std::uint32_t Plan::max_cut_tasks() const {
  std::uint32_t m = 0;
  for (const CutWave& c : cuts_) m = std::max(m, c.task_count);
  return m;
}

void Plan::reserve(std::size_t cuts, std::size_t tasks, std::size_t steps) {
  cuts_.reserve(cuts);
  tasks_.reserve(tasks);
  steps_.reserve(steps);
}

Plan Plan::build(const std::vector<Op*>& ops, int threads, bool fuse) {
  Plan plan;
  const std::size_t n = ops.size();
  if (n == 0) return plan;
  plan.stats_.ops = static_cast<std::uint32_t>(n);
  if (n == 1) {  // eager fast path: no clustering needed
    Op* op = ops[0];
    plan.stats_.chains = 1;
    plan.stats_.chain_len_hist[chain_len_bucket(1)] += 1;
    if (op->kind == OpKind::kGather) plan.stats_.slab_gather_rows = op->slab_rows;
    if (op->kind == OpKind::kScatterRows)
      plan.stats_.slab_scatter_rows = op->slab_rows;
    plan.add_cut();
    emit_single_op(plan, op, op_work(*op), threads);
    plan.link_cuts_sequential();
    return plan;
  }

  // Ops arrive in creation order, so every in-batch producer precedes its
  // consumers; one forward scan resolves the DAG. Producer indices live in
  // the output nodes themselves, tagged with a fresh epoch per build — a
  // node whose epoch doesn't match was materialized before this batch (a
  // batch-external input, complete before the plan runs).
  static std::atomic<std::uint64_t> g_epoch{0};
  const std::uint64_t epoch = g_epoch.fetch_add(1, std::memory_order_relaxed) + 1;

  // ---- pass 1: distinct in-batch producers per op + out-degrees -----------
  std::vector<std::uint32_t> prod_off(n + 1, 0);
  std::vector<std::uint32_t> prods;
  prods.reserve(2 * n);
  std::vector<std::uint32_t> outdeg(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    Op* op = ops[i];
    const std::size_t start = prods.size();
    for (const Var& in : op->inputs) {
      if (in->plan_epoch != epoch) continue;
      const std::uint32_t p = static_cast<std::uint32_t>(in->plan_wave);
      bool dup = false;
      for (std::size_t k = start; k < prods.size() && !dup; ++k)
        dup = prods[k] == p;
      if (!dup) {
        prods.push_back(p);
        ++outdeg[p];
      }
    }
    op->out->plan_epoch = epoch;
    op->out->plan_wave = static_cast<int>(i);
    prod_off[i + 1] = static_cast<std::uint32_t>(prods.size());
    if (op->kind == OpKind::kGather)
      plan.stats_.slab_gather_rows += op->slab_rows;
    else if (op->kind == OpKind::kScatterRows)
      plan.stats_.slab_scatter_rows += op->slab_rows;
  }

  // ---- pass 2: union-find gather-cut fusion --------------------------------
  //
  // Clusters are rooted at their last-appended op (the tail). Per root:
  //   esc     — edges from cluster members to ops outside the cluster. An op
  //             may absorb a producer cluster only when ALL of that cluster's
  //             escaping edges point at the op itself; this internalizes the
  //             last escapes and provably keeps the contracted DAG acyclic
  //             (any would-be cycle needs an escape from a non-tail member,
  //             which a successful union rules out), and it means no other
  //             consumer ever observed the cluster's level — delaying the
  //             merged cluster to a later cut is always safe.
  //   lvl     — the cluster's cut index: max over external in-edges of the
  //             producing cluster's lvl, plus one.
  //   aligned — every member reads chain-internal inputs row-aligned and all
  //             member outputs share crows rows: the cluster may be split
  //             into row-range tasks with bit-identical results.
  //   cwork/csize — summed op_work and member count.
  std::vector<std::uint32_t> uf(n), esc(n), lvl(n), csize(n);
  std::vector<std::uint64_t> cwork(n);
  std::vector<int> crows(n);
  std::vector<char> caligned(n);
  const auto find = [&uf](std::uint32_t x) {
    while (uf[x] != x) {
      uf[x] = uf[uf[x]];
      x = uf[x];
    }
    return x;
  };

  std::vector<std::uint32_t> roots, redges;  // per-op scratch, reused
  std::vector<char> rfusable, rselect;
  std::vector<std::uint32_t> forbid;
  for (std::size_t i = 0; i < n; ++i) {
    Op* op = ops[i];
    const std::uint32_t ui = static_cast<std::uint32_t>(i);
    uf[ui] = ui;
    const std::uint64_t wi = op_work(*op);
    const int rows_i = op_chain_rows(*op);
    const bool kind_aligned = row_aligned_kind(op->kind);

    // Distinct producer clusters and the edge count from each into this op.
    roots.clear();
    redges.clear();
    for (std::uint32_t k = prod_off[i]; k < prod_off[i + 1]; ++k) {
      const std::uint32_t r = find(prods[k]);
      bool seen = false;
      for (std::size_t j = 0; j < roots.size() && !seen; ++j)
        if (roots[j] == r) {
          ++redges[j];
          seen = true;
        }
      if (!seen) {
        roots.push_back(r);
        redges.push_back(1);
      }
    }
    rfusable.assign(roots.size(), 0);
    for (std::size_t j = 0; j < roots.size(); ++j)
      rfusable[j] = esc[roots[j]] == redges[j];

    // Clusters producing externality-sensitive operands: matmul's B and
    // add_row's row vector are read whole by every output row, and gather
    // reads arbitrary rows of every input — none of them may be computed
    // inside a row-split chain.
    forbid.clear();
    switch (op->kind) {
      case OpKind::kMatmul:
      case OpKind::kAddRow:
        if (op->inputs[1]->plan_epoch == epoch)
          forbid.push_back(
              find(static_cast<std::uint32_t>(op->inputs[1]->plan_wave)));
        break;
      case OpKind::kGather:
        for (const Var& in : op->inputs)
          if (in->plan_epoch == epoch)
            forbid.push_back(find(static_cast<std::uint32_t>(in->plan_wave)));
        break;
      case OpKind::kScatterRows:
        // Only the values operand (inputs[0]) is row-aligned with the
        // scatter. The consumed version and its readers order whole-slab
        // access — folding one into a row-split chain would let a slice
        // overwrite slab rows another slice's reader hasn't gathered yet.
        for (std::size_t j = 1; j < op->inputs.size(); ++j)
          if (op->inputs[j]->plan_epoch == epoch)
            forbid.push_back(
                find(static_cast<std::uint32_t>(op->inputs[j]->plan_wave)));
        break;
      default:
        break;
    }
    const auto forbidden = [&forbid](std::uint32_t r) {
      for (const std::uint32_t f : forbid)
        if (f == r) return true;
      return false;
    };

    // Case A — aligned merge: absorb fusable aligned producer clusters of
    // matching row count; the merged chain stays row-splittable, so no
    // parallelism is lost (row-range tasks carry each slice end to end).
    std::size_t a_count = 0;
    rselect.assign(roots.size(), 0);
    if (fuse && kind_aligned) {
      for (std::size_t j = 0; j < roots.size(); ++j)
        if (rfusable[j] && caligned[roots[j]] && crows[roots[j]] == rows_i &&
            !forbidden(roots[j])) {
          rselect[j] = 1;
          ++a_count;
        }
    }

    // Case B — sequential merge of every fusable producer cluster: allowed
    // only when it provably sacrifices no parallel slots (each merged
    // component would have run as a single task anyway) and the
    // non-dominant side work is below one chunk's worth — so deep narrow
    // chains fuse without bound while wide graphs keep their row chunking.
    bool b_ok = false;
    std::size_t b_count = 0;
    if (fuse) {
      std::uint64_t sum = wi, maxw = wi;
      int lost = chunk_count(wi, op_parallel_extent(*op), threads) - 1;
      for (std::size_t j = 0; j < roots.size(); ++j) {
        if (!rfusable[j]) continue;
        ++b_count;
        const std::uint32_t r = roots[j];
        sum += cwork[r];
        maxw = std::max(maxw, cwork[r]);
        if (caligned[r]) {
          lost += chunk_count(cwork[r], crows[r], threads) - 1;
        } else if (csize[r] == 1) {
          // A lone non-aligned op may still have been column-chunked
          // (segment_sum/segment_max); a singleton's root is the op itself.
          lost += chunk_count(cwork[r], op_parallel_extent(*ops[r]), threads) - 1;
        }
      }
      b_ok = b_count > 0 && lost == 0 && sum - maxw <= kSplitWork;
    }

    const bool use_a = a_count > 0 && !(b_ok && b_count > a_count);
    const bool use_b = !use_a && b_ok;
    if (use_a || use_b) {
      std::uint64_t w = wi;
      std::uint32_t sz = 1, level = 0;
      for (std::size_t j = 0; j < roots.size(); ++j) {
        const std::uint32_t r = roots[j];
        const bool merge = use_b ? rfusable[j] != 0 : rselect[j] != 0;
        if (merge) {
          uf[r] = ui;
          w += cwork[r];
          sz += csize[r];
          level = std::max(level, lvl[r]);
        } else {
          level = std::max(level, lvl[r] + 1);
        }
      }
      cwork[ui] = w;
      csize[ui] = sz;
      lvl[ui] = level;
      caligned[ui] = use_a ? 1 : 0;
    } else {
      std::uint32_t level = 0;
      for (const std::uint32_t r : roots) level = std::max(level, lvl[r] + 1);
      cwork[ui] = wi;
      csize[ui] = 1;
      lvl[ui] = level;
      // A lone op reads every input from outside its own cluster, so any
      // row-aligned kind (gather and matmul included) stays splittable.
      caligned[ui] = kind_aligned ? 1 : 0;
    }
    crows[ui] = rows_i;
    esc[ui] = outdeg[ui];
  }

  // ---- pass 3: order clusters by cut level, emit tasks ---------------------
  std::vector<std::uint32_t> root_of(n);
  std::vector<std::int32_t> cid_of_root(n, -1);
  std::vector<std::uint32_t> cluster_root;
  cluster_root.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    root_of[i] = find(static_cast<std::uint32_t>(i));
    if (cid_of_root[root_of[i]] < 0) {
      cid_of_root[root_of[i]] = static_cast<std::int32_t>(cluster_root.size());
      cluster_root.push_back(root_of[i]);
    }
  }
  const std::size_t nc = cluster_root.size();

  // Members per cluster, in creation order (a topological order of the
  // chain: every member's in-cluster producers were appended earlier).
  std::vector<std::uint32_t> coff(nc + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    ++coff[static_cast<std::size_t>(cid_of_root[root_of[i]]) + 1];
  for (std::size_t c = 0; c < nc; ++c) coff[c + 1] += coff[c];
  std::vector<std::uint32_t> members(n), cursor(coff.begin(), coff.end() - 1);
  for (std::size_t i = 0; i < n; ++i)
    members[cursor[static_cast<std::size_t>(cid_of_root[root_of[i]])]++] =
        static_cast<std::uint32_t>(i);

  // Clusters of a cut in first-appearance order: deterministic, and mutually
  // independent by the leveling above.
  std::uint32_t max_level = 0;
  for (std::size_t c = 0; c < nc; ++c)
    max_level = std::max(max_level, lvl[cluster_root[c]]);
  std::vector<std::uint32_t> lvl_off(max_level + 2, 0);
  for (std::size_t c = 0; c < nc; ++c) ++lvl_off[lvl[cluster_root[c]] + 1];
  for (std::size_t l = 0; l <= max_level; ++l) lvl_off[l + 1] += lvl_off[l];
  std::vector<std::uint32_t> order(nc);
  {
    std::vector<std::uint32_t> at(lvl_off.begin(), lvl_off.end() - 1);
    for (std::size_t c = 0; c < nc; ++c)
      order[at[lvl[cluster_root[c]]]++] = static_cast<std::uint32_t>(c);
  }

  plan.reserve(max_level + 1, nc, n);
  std::vector<std::uint32_t> emit_idx(nc);  // cluster -> DepNode id
  plan.dep_nodes_.reserve(nc);
  plan.task_node_.reserve(nc);
  for (std::uint32_t level = 0; level <= max_level; ++level) {
    plan.add_cut();
    for (std::uint32_t pos = lvl_off[level]; pos < lvl_off[level + 1]; ++pos) {
      const std::uint32_t c = order[pos];
      const std::uint32_t root = cluster_root[c];
      const std::uint32_t size = coff[c + 1] - coff[c];
      emit_idx[c] = static_cast<std::uint32_t>(plan.dep_nodes_.size());
      const std::uint32_t node_first_task =
          static_cast<std::uint32_t>(plan.tasks_.size());
      plan.stats_.chains += 1;
      plan.stats_.chain_len_hist[chain_len_bucket(static_cast<int>(size))] += 1;
      if (size == 1) {
        Op* op = ops[members[coff[c]]];
        emit_single_op(plan, op, cwork[root], threads);
        plan.dep_nodes_.push_back(DepNode{
            node_first_task,
            static_cast<std::uint32_t>(plan.tasks_.size()) - node_first_task, 0,
            0, 0});
        while (plan.task_node_.size() < plan.tasks_.size())
          plan.task_node_.push_back(emit_idx[c]);
        continue;
      }
      plan.stats_.fused_ops += size;
      if (caligned[root]) {
        // Row-splittable chain: K tasks, each carrying its row slice
        // through every step — same disjoint-output coverage and inner
        // order as PR 3's per-op chunks, so results stay bit-identical.
        const int rows = crows[root];
        const int k = chunk_count(cwork[root], rows, threads);
        const std::uint64_t share =
            cwork[root] / static_cast<std::uint64_t>(k);
        const int base = rows / k, rem = rows % k;
        int begin = 0;
        for (int t = 0; t < k; ++t) {
          const int len = base + (t < rem ? 1 : 0);
          plan.add_task(share);
          for (std::uint32_t m = coff[c]; m < coff[c + 1]; ++m)
            plan.add_step(
                Chunk{ops[members[m]], begin, begin + len, kRoleForward});
          begin += len;
        }
      } else {
        // Sequential chain: one thread runs every step full-extent, in
        // creation order — exactly the sequential execution of the chain.
        plan.add_task(cwork[root]);
        for (std::uint32_t m = coff[c]; m < coff[c + 1]; ++m) {
          Op* op = ops[members[m]];
          const int extent = op_parallel_extent(*op);
          plan.add_step(
              Chunk{op, 0, extent > 0 ? extent : 0, kRoleForward});
        }
      }
      plan.dep_nodes_.push_back(DepNode{
          node_first_task,
          static_cast<std::uint32_t>(plan.tasks_.size()) - node_first_task, 0,
          0, 0});
      while (plan.task_node_.size() < plan.tasks_.size())
        plan.task_node_.push_back(emit_idx[c]);
    }
  }

  // ---- pass 4: dependency edges over the contracted DAG --------------------
  //
  // For every cross-cluster producer edge, record producer-node ->
  // consumer-node (deduplicated per consumer) and seed the consumer's
  // countdown with the producer's task count. Nodes were emitted in cut
  // order, so every producer's task_count is final by the time its
  // consumers sum it.
  {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(n);
    std::vector<std::uint32_t> mark(nc, 0xFFFFFFFFu);
    for (std::size_t c = 0; c < nc; ++c) {
      const std::uint32_t ce = emit_idx[c];
      const std::uint32_t root = cluster_root[c];
      for (std::uint32_t m = coff[c]; m < coff[c + 1]; ++m) {
        const std::uint32_t i = members[m];
        for (std::uint32_t k = prod_off[i]; k < prod_off[i + 1]; ++k) {
          const std::uint32_t rp = find(prods[k]);
          if (rp == root) continue;
          const std::uint32_t pe =
              emit_idx[static_cast<std::size_t>(cid_of_root[rp])];
          if (mark[pe] == ce) continue;
          mark[pe] = ce;
          edges.emplace_back(pe, ce);
          plan.dep_nodes_[ce].in_tasks += plan.dep_nodes_[pe].task_count;
        }
      }
    }
    std::vector<std::uint32_t> ccount(nc, 0);
    for (const auto& e : edges) ++ccount[e.first];
    plan.consumers_.resize(edges.size());
    std::uint32_t off = 0;
    for (std::size_t p = 0; p < nc; ++p) {
      plan.dep_nodes_[p].consumers_begin = off;
      off += ccount[p];
      plan.dep_nodes_[p].consumers_end = plan.dep_nodes_[p].consumers_begin;
    }
    for (const auto& e : edges)
      plan.consumers_[plan.dep_nodes_[e.first].consumers_end++] = e.second;
    plan.dep_linked_ = true;
  }
  return plan;
}

std::uint32_t Plan::released_task_count() const {
  std::uint32_t released = 0;
  for (const DepNode& nd : dep_nodes_)
    if (nd.in_tasks > 0) released += nd.task_count;
  return released;
}

void Plan::link_cuts_sequential() {
  dep_nodes_.clear();
  consumers_.clear();
  task_node_.assign(tasks_.size(), 0);
  dep_nodes_.reserve(cuts_.size());
  consumers_.reserve(cuts_.size());
  std::uint32_t prev = 0xFFFFFFFFu;  // last non-empty node id
  for (std::size_t w = 0; w < cuts_.size(); ++w) {
    if (cuts_[w].task_count == 0) continue;
    const std::uint32_t id = static_cast<std::uint32_t>(dep_nodes_.size());
    DepNode nd{cuts_[w].first_task, cuts_[w].task_count, 0, 0, 0};
    if (prev != 0xFFFFFFFFu) {
      nd.in_tasks = dep_nodes_[prev].task_count;
      dep_nodes_[prev].consumers_begin =
          static_cast<std::uint32_t>(consumers_.size());
      consumers_.push_back(id);
      dep_nodes_[prev].consumers_end =
          static_cast<std::uint32_t>(consumers_.size());
    }
    for (std::uint32_t t = 0; t < nd.task_count; ++t)
      task_node_[nd.first_task + t] = id;
    dep_nodes_.push_back(nd);
    prev = id;
  }
  dep_linked_ = true;
}

}  // namespace deepseq::nn
