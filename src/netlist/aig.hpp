#pragma once

#include <vector>

#include "netlist/circuit.hpp"

namespace deepseq {

/// Result of converting a generic multi-gate-type netlist into a strict
/// sequential AIG (paper §V-A2): every OR/NAND/NOR/XOR/XNOR/MUX/BUF gate is
/// decomposed into an AND/NOT combination *without optimization*. node_map
/// records, per original node, the representative "fanout gate" of its
/// combination — the node whose logic value (hence switching activity)
/// equals the original gate's output, so probabilities are read off
/// representatives only.
struct AigConversion {
  Circuit aig;
  std::vector<NodeId> node_map;
};

AigConversion decompose_to_aig(const Circuit& generic);

/// Light AIG cleanup used on training circuits ("optimized AIG format",
/// paper §III): constant propagation, double-inverter elimination,
/// structural hashing of AND/NOT, and a dead-logic sweep keeping the cone of
/// primary outputs (PIs are always kept — workloads are defined on them).
/// node_map maps old ids to new ids (kNullNode when removed as dead).
struct OptimizeResult {
  Circuit circuit;
  std::vector<NodeId> node_map;
  std::size_t removed_nodes = 0;
};

OptimizeResult optimize_aig(const Circuit& aig);

}  // namespace deepseq
