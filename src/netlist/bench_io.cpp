#include "netlist/bench_io.hpp"

#include "netlist/expand.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace deepseq {

namespace {

struct PendingGate {
  NodeId id = kNullNode;  // kNullNode for n-ary gates expanded after pass 1
  std::string lhs;
  GateType type = GateType::kConst0;
  std::vector<std::string> fanin_names;
  int line = 0;
};

}  // namespace

Circuit parse_bench(std::istream& in, std::string circuit_name) {
  Circuit c(std::move(circuit_name));
  std::unordered_map<std::string, NodeId> by_name;
  std::vector<std::pair<std::string, int>> output_names;  // name, line
  std::vector<PendingGate> pending;

  auto define = [&](const std::string& name, NodeId id, int line) {
    auto [it, inserted] = by_name.emplace(name, id);
    (void)it;
    if (!inserted) throw ParseError("signal redefined: " + name, line);
  };

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line[0] == '#') continue;

    const auto lower = to_lower(line);
    if (starts_with(lower, "input(") || starts_with(lower, "output(")) {
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      if (close == std::string_view::npos || close <= open)
        throw ParseError("malformed I/O declaration", line_no);
      const std::string sig(trim(line.substr(open + 1, close - open - 1)));
      if (sig.empty()) throw ParseError("empty signal name", line_no);
      if (starts_with(lower, "input(")) {
        define(sig, c.add_pi(sig), line_no);
      } else {
        output_names.emplace_back(sig, line_no);
      }
      continue;
    }

    // "lhs = GATE(a, b, ...)"
    const auto eq = line.find('=');
    if (eq == std::string_view::npos)
      throw ParseError("expected assignment: " + std::string(line), line_no);
    PendingGate pg;
    pg.lhs = std::string(trim(line.substr(0, eq)));
    pg.line = line_no;
    std::string_view rhs = trim(line.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close <= open)
      throw ParseError("malformed gate expression: " + std::string(rhs),
                       line_no);
    pg.type = parse_gate_type(trim(rhs.substr(0, open)));
    const auto args = rhs.substr(open + 1, close - open - 1);
    if (!trim(args).empty()) {
      for (const auto& f : split(args, ',')) {
        const auto t = trim(f);
        if (t.empty()) throw ParseError("empty fanin name", line_no);
        pg.fanin_names.emplace_back(t);
      }
    }

    if (pg.type == GateType::kFf) {
      if (pg.fanin_names.size() != 1)
        throw ParseError("DFF takes exactly one input", line_no);
      pg.id = c.add_ff(kNullNode, pg.lhs);
    } else if (pg.type == GateType::kConst0) {
      if (!pg.fanin_names.empty())
        throw ParseError("CONST0 takes no inputs", line_no);
      pg.id = c.add_const0(pg.lhs);
    } else if (pg.type == GateType::kPi) {
      throw ParseError("INPUT must be declared as INPUT(name)", line_no);
    } else {
      const int arity = gate_arity(pg.type);
      const bool nary_ok =
          pg.type == GateType::kAnd || pg.type == GateType::kOr ||
          pg.type == GateType::kNand || pg.type == GateType::kNor;
      const auto n = static_cast<int>(pg.fanin_names.size());
      if (n != arity && !(nary_ok && n > 2))
        throw ParseError(
            "wrong fanin count for " + std::string(gate_type_name(pg.type)),
            line_no);
      if (n == arity) {
        pg.id = c.add_gate(pg.type, std::vector<NodeId>(n, kNullNode), pg.lhs);
      }
      // else: n-ary gate, expanded after all names are known (pg.id stays
      // kNullNode).
    }
    if (pg.id != kNullNode) define(pg.lhs, pg.id, line_no);
    pending.push_back(std::move(pg));
  }

  auto resolve = [&](const std::string& name, int line) -> NodeId {
    auto it = by_name.find(name);
    if (it == by_name.end()) throw ParseError("undefined signal: " + name, line);
    return it->second;
  };

  // N-ary expansions must run before fanin patching so their lhs names
  // exist. An n-ary gate may feed another n-ary gate defined earlier in the
  // file, so expand to a fixpoint; progress is guaranteed because
  // combinational cycles are invalid (feedback passes through DFFs, which
  // are already defined).
  std::vector<PendingGate*> todo;
  for (auto& pg : pending)
    if (pg.id == kNullNode) todo.push_back(&pg);
  while (!todo.empty()) {
    std::vector<PendingGate*> stuck;
    for (PendingGate* pg : todo) {
      bool ready = true;
      for (const auto& f : pg->fanin_names)
        if (by_name.find(f) == by_name.end()) ready = false;
      if (!ready) {
        stuck.push_back(pg);
        continue;
      }
      std::vector<NodeId> leaves;
      leaves.reserve(pg->fanin_names.size());
      for (const auto& f : pg->fanin_names) leaves.push_back(resolve(f, pg->line));
      define(pg->lhs, build_gate_tree(c, pg->type, std::move(leaves), pg->lhs),
             pg->line);
    }
    if (stuck.size() == todo.size())
      throw ParseError("undefined signal: " + stuck.front()->fanin_names.front(),
                       stuck.front()->line);
    todo = std::move(stuck);
  }
  for (const auto& pg : pending) {
    if (pg.id == kNullNode) continue;
    for (std::size_t i = 0; i < pg.fanin_names.size(); ++i)
      c.set_fanin(pg.id, static_cast<int>(i), resolve(pg.fanin_names[i], pg.line));
  }

  for (const auto& [name, line] : output_names)
    c.add_po(resolve(name, line), name);

  c.validate();
  return c;
}

Circuit parse_bench_string(const std::string& text, std::string circuit_name) {
  std::istringstream in(text);
  return parse_bench(in, std::move(circuit_name));
}

Circuit parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open file: " + path);
  const auto slash = path.find_last_of('/');
  std::string base = (slash == std::string::npos) ? path : path.substr(slash + 1);
  return parse_bench(in, std::move(base));
}

std::vector<std::string> unique_node_names(const Circuit& c) {
  std::vector<std::string> names(c.num_nodes());
  std::unordered_map<std::string, int> used;
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    std::string n = c.node_name(v);
    if (n.empty()) n = "n" + std::to_string(v);
    auto [it, inserted] = used.emplace(n, 0);
    if (!inserted) n += "_" + std::to_string(++it->second);
    names[v] = std::move(n);
  }
  return names;
}

void write_bench(const Circuit& c, std::ostream& out) {
  const auto names = unique_node_names(c);
  out << "# " << c.name() << "\n";
  for (NodeId pi : c.pis()) out << "INPUT(" << names[pi] << ")\n";
  for (NodeId po : c.pos()) out << "OUTPUT(" << names[po] << ")\n";
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    const GateType t = c.type(v);
    if (t == GateType::kPi) continue;
    out << names[v] << " = " << gate_type_name(t) << "(";
    for (int i = 0; i < c.num_fanins(v); ++i) {
      if (i > 0) out << ", ";
      out << names[c.fanin(v, i)];
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Circuit& c) {
  std::ostringstream out;
  write_bench(c, out);
  return out.str();
}

void write_bench_file(const Circuit& c, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open file for writing: " + path);
  write_bench(c, out);
}

}  // namespace deepseq
