#include "dataset/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace deepseq {

namespace {

GateType pick_gate_type(const GeneratorSpec& spec, Rng& rng) {
  double total = 0.0;
  for (double w : spec.gate_weights) total += w;
  if (total <= 0.0) throw Error("generate_circuit: all gate weights zero");
  double x = rng.uniform(0.0, total);
  for (int t = 0; t < kNumGateTypes; ++t) {
    x -= spec.gate_weights[t];
    if (x < 0.0) return static_cast<GateType>(t);
  }
  return GateType::kAnd;
}

/// Locality-biased pick from `pool`: indexes near the end (recent nodes)
/// are exponentially more likely, giving the netlist realistic depth.
NodeId pick_fanin(const std::vector<NodeId>& pool, double locality, Rng& rng) {
  const auto n = static_cast<double>(pool.size());
  double u = rng.uniform();
  if (u <= 1e-12) u = 1e-12;
  const double back = -std::log(u) * locality;
  const auto idx = static_cast<std::size_t>(
      std::clamp(n - 1.0 - back, 0.0, n - 1.0));
  return pool[idx];
}

}  // namespace

Circuit generate_circuit(const GeneratorSpec& spec, Rng& rng) {
  if (spec.num_pis < 1) throw Error("generate_circuit: need at least one PI");
  Circuit c(spec.name);

  std::vector<NodeId> pool;
  for (int i = 0; i < spec.num_pis; ++i)
    pool.push_back(c.add_pi("pi" + std::to_string(i)));
  std::vector<NodeId> ffs;
  for (int i = 0; i < spec.num_ffs; ++i) {
    const NodeId ff = c.add_ff(kNullNode, "ff" + std::to_string(i));
    ffs.push_back(ff);
    pool.push_back(ff);
  }

  std::vector<NodeId> gates;
  for (int i = 0; i < spec.num_gates; ++i) {
    GateType t = pick_gate_type(spec, rng);
    const int arity = gate_arity(t);
    std::vector<NodeId> fanins;
    for (int k = 0; k < arity; ++k) {
      NodeId f = pick_fanin(pool, spec.locality, rng);
      // Distinct fanins: identical inputs make XOR/XNOR degenerate to
      // constants, which the AIG optimizer would then fold away.
      int guard = 0;
      while (std::find(fanins.begin(), fanins.end(), f) != fanins.end() &&
             guard++ < 16)
        f = pick_fanin(pool, spec.locality, rng);
      if (std::find(fanins.begin(), fanins.end(), f) != fanins.end()) {
        t = GateType::kNot;  // give up: unary gate cannot repeat fanins
        fanins.resize(0);
        fanins.push_back(f);
        break;
      }
      fanins.push_back(f);
    }
    if (static_cast<int>(fanins.size()) != gate_arity(t)) fanins.resize(gate_arity(t));
    const NodeId g = c.add_gate(t, fanins, "g" + std::to_string(i));
    gates.push_back(g);
    pool.push_back(g);
  }

  // Close FF feedback loops: D inputs from late (deep) gates.
  for (NodeId ff : ffs) {
    const NodeId d = gates.empty() ? pool[rng.uniform_index(pool.size())]
                                   : pick_fanin(gates, spec.locality, rng);
    c.set_fanin(ff, 0, d);
  }

  // POs: every sink (no fanout), plus a sprinkling of internal probes.
  const auto fanouts = c.fanouts();
  int po_idx = 0;
  for (NodeId g : gates)
    if (fanouts[g].empty())
      c.add_po(g, "po" + std::to_string(po_idx++));
  for (NodeId g : gates) {
    if (!fanouts[g].empty() && rng.bernoulli(spec.extra_po_fraction))
      c.add_po(g, "po" + std::to_string(po_idx++));
  }
  if (c.pos().empty() && !gates.empty()) c.add_po(gates.back(), "po0");

  c.validate();
  return c;
}

GeneratorSpec iscas89_like_spec(Rng& rng) {
  // ISCAS'89 subcircuits: smallest family (Table I: 148.9 +/- 87.6 nodes),
  // control-dominated (heavier NAND/NOR mix).
  GeneratorSpec s;
  s.name = "iscas89";
  s.num_pis = static_cast<int>(rng.uniform_int(4, 14));
  s.num_ffs = static_cast<int>(rng.uniform_int(4, 18));
  s.num_gates = static_cast<int>(rng.uniform_int(60, 240));
  s.locality = rng.uniform(10.0, 30.0);
  s.gate_weights[static_cast<int>(GateType::kNand)] = 4;
  s.gate_weights[static_cast<int>(GateType::kNor)] = 3;
  s.gate_weights[static_cast<int>(GateType::kMux)] = 0.5;
  return s;
}

GeneratorSpec itc99_like_spec(Rng& rng) {
  // ITC'99 subcircuits: largest family (272.6 +/- 108.3), datapath-heavy
  // (more XOR/MUX from RTL synthesis).
  GeneratorSpec s;
  s.name = "itc99";
  s.num_pis = static_cast<int>(rng.uniform_int(6, 20));
  s.num_ffs = static_cast<int>(rng.uniform_int(8, 32));
  s.num_gates = static_cast<int>(rng.uniform_int(140, 420));
  s.locality = rng.uniform(16.0, 48.0);
  s.gate_weights[static_cast<int>(GateType::kXor)] = 2;
  s.gate_weights[static_cast<int>(GateType::kMux)] = 2;
  return s;
}

GeneratorSpec opencores_like_spec(Rng& rng) {
  // OpenCores subcircuits: mid-size (211.4 +/- 81.4), balanced mix.
  GeneratorSpec s;
  s.name = "opencores";
  s.num_pis = static_cast<int>(rng.uniform_int(5, 16));
  s.num_ffs = static_cast<int>(rng.uniform_int(6, 26));
  s.num_gates = static_cast<int>(rng.uniform_int(110, 320));
  s.locality = rng.uniform(12.0, 40.0);
  return s;
}

}  // namespace deepseq
