#include "bench_util.hpp"

#include <cmath>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/env.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "nn/serialize.hpp"

namespace deepseq::bench {

BenchConfig BenchConfig::from_env() {
  BenchConfig cfg;
  cfg.full = full_scale();
  if (cfg.full) {
    // Paper-scale parameters (§IV-A3, §V). These take days on one core.
    cfg.circuits = 10534;
    cfg.sim_cycles = 10000;
    cfg.epochs = 50;
    cfg.hidden = 64;
    cfg.iterations = 10;
    cfg.lr = 1e-4f;
    cfg.design_scale = 1.0;
    cfg.gt_cycles = 10000;
    cfg.ft_workloads = 1000;
    cfg.ft_epochs = 50;
    cfg.ft_lr = 1e-4f;
    cfg.ft_cycles = 10000;
    cfg.fault_sequences = 1000;
    cfg.rel_ft_samples = 10534;
    cfg.rel_ft_epochs = 50;
  }
  cfg.circuits = static_cast<int>(env_int("DEEPSEQ_CIRCUITS", cfg.circuits));
  cfg.sim_cycles = static_cast<int>(env_int("DEEPSEQ_CYCLES", cfg.sim_cycles));
  cfg.epochs = static_cast<int>(env_int("DEEPSEQ_EPOCHS", cfg.epochs));
  cfg.hidden = static_cast<int>(env_int("DEEPSEQ_HIDDEN", cfg.hidden));
  cfg.iterations = static_cast<int>(env_int("DEEPSEQ_T", cfg.iterations));
  cfg.gt_cycles = static_cast<int>(env_int("DEEPSEQ_GT_CYCLES", cfg.gt_cycles));
  cfg.ft_workloads = static_cast<int>(env_int("DEEPSEQ_FT_WORKLOADS", cfg.ft_workloads));
  cfg.ft_epochs = static_cast<int>(env_int("DEEPSEQ_FT_EPOCHS", cfg.ft_epochs));
  cfg.fault_sequences = static_cast<int>(env_int("DEEPSEQ_FAULT_SEQS", cfg.fault_sequences));
  const std::int64_t scale_denom = env_int("DEEPSEQ_SCALE_DENOM", 0);
  if (scale_denom > 0) cfg.design_scale = 1.0 / static_cast<double>(scale_denom);
  cfg.cache_dir = env_string("DEEPSEQ_CACHE", cfg.cache_dir);
  return cfg;
}

std::string BenchConfig::fingerprint() const {
  std::ostringstream s;
  s << "c" << circuits << "_s" << sim_cycles << "_e" << epochs << "_h" << hidden
    << "_t" << iterations << "_lr" << lr << "_b" << batch << "_d" << data_seed;
  return s.str();
}

const TrainingDataset& shared_dataset(const BenchConfig& cfg) {
  static TrainingDataset dataset;
  static bool built = false;
  if (!built) {
    WallTimer t;
    TrainingDataOptions opt;
    opt.num_subcircuits = cfg.circuits;
    opt.sim_cycles = cfg.sim_cycles;
    opt.seed = cfg.data_seed;
    dataset = build_training_dataset(opt);
    std::printf("[setup] dataset: %d subcircuits, %d-cycle workloads (%.1fs)\n",
                cfg.circuits, cfg.sim_cycles, t.seconds());
    built = true;
  }
  return dataset;
}

void split_dataset(const BenchConfig& cfg, std::vector<TrainSample>& train,
                   std::vector<TrainSample>& val) {
  split_train_val(shared_dataset(cfg).samples, cfg.val_fraction, 3, train, val);
}

namespace {

std::string sanitize(std::string s) {
  for (auto& ch : s)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return s;
}

}  // namespace

DeepSeqModel train_or_load(const ModelConfig& config,
                           const std::vector<TrainSample>& train,
                           const BenchConfig& cfg, const std::string& tag) {
  TrainOptions topt;
  topt.epochs = cfg.epochs;
  topt.lr = cfg.lr;
  topt.batch_size = cfg.batch;
  return train_or_load(config, train, cfg, tag, topt);
}

DeepSeqModel train_or_load(const ModelConfig& config,
                           const std::vector<TrainSample>& train,
                           const BenchConfig& cfg, const std::string& tag,
                           const TrainOptions& topt) {
  DeepSeqModel model(config);
  std::filesystem::create_directories(cfg.cache_dir);
  std::ostringstream key;
  key << cfg.cache_dir << "/" << sanitize(tag) << "_"
      << sanitize(config.description()) << "_h" << config.hidden_dim << "_T"
      << config.iterations << "_" << cfg.fingerprint() << ".bin";
  const std::string path = key.str();
  if (std::filesystem::exists(path)) {
    model.load(path);
    std::printf("[cache] loaded %s\n", path.c_str());
    return model;
  }
  WallTimer t;
  Trainer trainer(model, topt);
  trainer.fit(train);
  model.save(path);
  std::printf("[train] %s: %d epochs in %.0fs -> %s\n",
              config.description().c_str(), topt.epochs, t.seconds(), path.c_str());
  return model;
}

FtBudget scaled_ft_budget(const BenchConfig& cfg, std::size_t aig_nodes) {
  FtBudget b{cfg.ft_workloads, cfg.ft_epochs};
  if (cfg.full || aig_nodes == 0) return b;
  const double scale = std::sqrt(1000.0 / static_cast<double>(aig_nodes));
  auto clamp_scale = [&](int base) {
    const int scaled = static_cast<int>(std::lround(base * scale));
    return std::max(base * 3 / 5, std::min(base * 2, scaled));
  };
  b.workloads = clamp_scale(cfg.ft_workloads);
  b.epochs = clamp_scale(cfg.ft_epochs);
  return b;
}

DeepSeqModel pretrained_deepseq(const BenchConfig& cfg) {
  ModelConfig mc = ModelConfig::deepseq(cfg.hidden, cfg.iterations);
  return train_or_load(mc, shared_dataset(cfg).samples, cfg, "pretrain");
}

GranniteModel pretrained_grannite(const BenchConfig& cfg) {
  GranniteConfig gc;
  gc.hidden_dim = cfg.hidden;
  GranniteModel model(gc);
  std::filesystem::create_directories(cfg.cache_dir);
  const std::string path =
      cfg.cache_dir + "/pretrain_grannite_" + cfg.fingerprint() + ".bin";
  if (std::filesystem::exists(path)) {
    nn::load_params(path, model.params());
    std::printf("[cache] loaded %s\n", path.c_str());
    return model;
  }
  WallTimer t;
  const auto& ds = shared_dataset(cfg);
  std::vector<GranniteSample> gs;
  gs.reserve(ds.samples.size());
  for (const auto& s : ds.samples) gs.push_back(make_grannite_sample(s));
  model.fit(gs, cfg.epochs, cfg.lr);
  nn::save_params(path, model.params());
  std::printf("[train] Grannite baseline: %d epochs in %.0fs\n", cfg.epochs,
              t.seconds());
  return model;
}

void print_banner(const std::string& table, const std::string& caption,
                  const BenchConfig& cfg) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", table.c_str(), caption.c_str());
  std::printf("scale: %s (hidden=%d, T=%d, %d circuits, %d epochs, design x%.4f)\n",
              cfg.full ? "FULL (paper)" : "default (single-core)", cfg.hidden,
              cfg.iterations, cfg.circuits, cfg.epochs, cfg.design_scale);
  std::printf("================================================================\n");
}

std::string pct(double fraction, int decimals) {
  return format_percent(fraction, decimals);
}

// ---- JSON ------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string JsonWriter::str() const { return out_ + "\n"; }

void JsonWriter::separator() {
  if (need_comma_) out_ += ",";
  need_comma_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += "{";
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += "}";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& k) {
  if (!k.empty()) key(k);
  separator();
  out_ += "[";
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += "]";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  separator();
  out_ += "\"" + json_escape(k) + "\":";
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separator();
  out_ += "\"" + json_escape(v) + "\"";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  separator();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int v) { return value(static_cast<std::int64_t>(v)); }

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

void write_json_file(const std::string& path, const std::string& json) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("[bench] wrote %s\n", path.c_str());
}

void json_summary(JsonWriter& json, const std::string& prefix,
                  const obs::Summary& s) {
  json.field(prefix + "_count", s.count);
  json.field(prefix + "_mean_ms", s.mean);
  json.field(prefix + "_p50_ms", s.p50);
  json.field(prefix + "_p90_ms", s.p90);
  json.field(prefix + "_p99_ms", s.p99);
  json.field(prefix + "_max_ms", s.max);
}

void json_histogram(JsonWriter& json, const std::string& prefix,
                    const obs::HistogramSnapshot& h, double scale) {
  const obs::Summary s = h.summary(scale);
  json.field(prefix + "_count", s.count);
  json.field(prefix + "_mean", s.mean);
  json.field(prefix + "_p50", s.p50);
  json.field(prefix + "_p99", s.p99);
  json.field(prefix + "_max", s.max);
}

}  // namespace deepseq::bench
