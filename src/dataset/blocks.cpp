#include "dataset/blocks.hpp"

#include "common/error.hpp"

namespace deepseq::blocks {

std::vector<NodeId> counter(Circuit& c, int bits, NodeId enable,
                            const std::string& prefix) {
  if (bits < 1) throw Error("counter: bits must be >= 1");
  std::vector<NodeId> state;
  for (int i = 0; i < bits; ++i)
    state.push_back(c.add_ff(kNullNode, prefix + "_q" + std::to_string(i)));
  // carry chain: bit i toggles when all lower bits are 1 (and enabled).
  NodeId carry = enable;
  for (int i = 0; i < bits; ++i) {
    const NodeId toggled =
        c.add_gate(GateType::kXor, {state[i], carry}, prefix + "_t" + std::to_string(i));
    c.set_fanin(state[i], 0, toggled);
    if (i + 1 < bits)
      carry = c.add_and(carry, state[i], prefix + "_c" + std::to_string(i));
  }
  return state;
}

std::vector<NodeId> shift_register(Circuit& c, NodeId in, int depth,
                                   NodeId enable, const std::string& prefix) {
  if (depth < 1) throw Error("shift_register: depth must be >= 1");
  std::vector<NodeId> stages;
  NodeId prev = in;
  for (int i = 0; i < depth; ++i) {
    const NodeId ff = c.add_ff(kNullNode, prefix + "_s" + std::to_string(i));
    // hold when disabled: D = enable ? prev : ff
    const NodeId d = c.add_gate(GateType::kMux, {enable, prev, ff},
                                prefix + "_d" + std::to_string(i));
    c.set_fanin(ff, 0, d);
    stages.push_back(ff);
    prev = ff;
  }
  return stages;
}

std::vector<NodeId> lfsr(Circuit& c, int bits, const std::string& prefix) {
  if (bits < 2) throw Error("lfsr: bits must be >= 2");
  std::vector<NodeId> state;
  for (int i = 0; i < bits; ++i)
    state.push_back(c.add_ff(kNullNode, prefix + "_q" + std::to_string(i)));
  // Feedback = parity of the last two taps, inverted so the all-zero reset
  // state is not absorbing (XNOR-form LFSR).
  const NodeId fb = c.add_gate(GateType::kXnor, {state[bits - 1], state[bits - 2]},
                               prefix + "_fb");
  c.set_fanin(state[0], 0, fb);
  for (int i = 1; i < bits; ++i) c.set_fanin(state[i], 0, state[i - 1]);
  return state;
}

NodeId mux_tree(Circuit& c, const std::vector<NodeId>& data,
                const std::vector<NodeId>& sel, const std::string& prefix) {
  if (data.size() != (1ULL << sel.size()))
    throw Error("mux_tree: data size must be 2^sel size");
  std::vector<NodeId> layer = data;
  for (std::size_t s = 0; s < sel.size(); ++s) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < layer.size(); i += 2) {
      next.push_back(c.add_gate(
          GateType::kMux, {sel[s], layer[i + 1], layer[i]},
          prefix + "_m" + std::to_string(s) + "_" + std::to_string(i / 2)));
    }
    layer = std::move(next);
  }
  return layer[0];
}

std::vector<NodeId> ripple_adder(Circuit& c, const std::vector<NodeId>& a,
                                 const std::vector<NodeId>& b,
                                 const std::string& prefix) {
  if (a.size() != b.size() || a.empty())
    throw Error("ripple_adder: operand width mismatch");
  std::vector<NodeId> sum;
  NodeId carry = kNullNode;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string k = std::to_string(i);
    const NodeId axb = c.add_gate(GateType::kXor, {a[i], b[i]}, prefix + "_x" + k);
    if (carry == kNullNode) {
      sum.push_back(axb);
      carry = c.add_and(a[i], b[i], prefix + "_c" + k);
    } else {
      sum.push_back(c.add_gate(GateType::kXor, {axb, carry}, prefix + "_s" + k));
      const NodeId t1 = c.add_and(a[i], b[i], prefix + "_g" + k);
      const NodeId t2 = c.add_and(axb, carry, prefix + "_p" + k);
      carry = c.add_gate(GateType::kOr, {t1, t2}, prefix + "_co" + k);
    }
  }
  sum.push_back(carry);
  return sum;
}

NodeId parity(Circuit& c, const std::vector<NodeId>& in,
              const std::string& prefix) {
  if (in.empty()) throw Error("parity: empty input");
  std::vector<NodeId> layer = in;
  int level = 0;
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(c.add_gate(
          GateType::kXor, {layer[i], layer[i + 1]},
          prefix + "_p" + std::to_string(level) + "_" + std::to_string(i / 2)));
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
    ++level;
  }
  return layer[0];
}

NodeId equal(Circuit& c, const std::vector<NodeId>& a,
             const std::vector<NodeId>& b, const std::string& prefix) {
  if (a.size() != b.size() || a.empty()) throw Error("equal: width mismatch");
  std::vector<NodeId> bits;
  for (std::size_t i = 0; i < a.size(); ++i)
    bits.push_back(c.add_gate(GateType::kXnor, {a[i], b[i]},
                              prefix + "_e" + std::to_string(i)));
  // AND-reduce.
  std::vector<NodeId> layer = bits;
  int level = 0;
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(c.add_and(
          layer[i], layer[i + 1],
          prefix + "_a" + std::to_string(level) + "_" + std::to_string(i / 2)));
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
    ++level;
  }
  return layer[0];
}

std::vector<NodeId> random_fsm(Circuit& c, int state_bits,
                               const std::vector<NodeId>& inputs, Rng& rng,
                               const std::string& prefix) {
  if (state_bits < 1) throw Error("random_fsm: state_bits must be >= 1");
  std::vector<NodeId> state;
  for (int i = 0; i < state_bits; ++i)
    state.push_back(c.add_ff(kNullNode, prefix + "_q" + std::to_string(i)));

  std::vector<NodeId> signals = state;
  signals.insert(signals.end(), inputs.begin(), inputs.end());
  for (int i = 0; i < state_bits; ++i) {
    // Next-state bit: random 2-level logic over state + inputs.
    std::vector<NodeId> terms;
    const int num_terms = static_cast<int>(rng.uniform_int(2, 3));
    for (int t = 0; t < num_terms; ++t) {
      NodeId x = signals[rng.uniform_index(signals.size())];
      NodeId y = signals[rng.uniform_index(signals.size())];
      if (x == y) y = signals[(rng.uniform_index(signals.size()) + 1) % signals.size()];
      if (rng.bernoulli(0.4))
        x = c.add_not(x, prefix + "_n" + std::to_string(i) + "_" + std::to_string(t));
      terms.push_back(c.add_and(x, y,
                                prefix + "_t" + std::to_string(i) + "_" + std::to_string(t)));
    }
    NodeId next = terms[0];
    for (std::size_t t = 1; t < terms.size(); ++t)
      next = c.add_gate(GateType::kOr, {next, terms[t]},
                        prefix + "_o" + std::to_string(i) + "_" + std::to_string(t));
    c.set_fanin(state[i], 0, next);
  }
  return state;
}

std::vector<NodeId> arbiter(Circuit& c, const std::vector<NodeId>& req,
                            const std::string& prefix) {
  if (req.empty()) throw Error("arbiter: no requesters");
  // Fixed-priority core with a registered "last grant" mask for fairness.
  std::vector<NodeId> grants;
  NodeId blocked = kNullNode;  // OR of higher-priority requests
  for (std::size_t i = 0; i < req.size(); ++i) {
    const std::string k = std::to_string(i);
    NodeId g;
    if (blocked == kNullNode) {
      g = c.add_gate(GateType::kBuf, {req[i]}, prefix + "_g" + k);
      blocked = req[i];
    } else {
      const NodeId nb = c.add_not(blocked, prefix + "_nb" + k);
      g = c.add_and(req[i], nb, prefix + "_g" + k);
      blocked = c.add_gate(GateType::kOr, {blocked, req[i]}, prefix + "_b" + k);
    }
    // Register the grant (pipeline stage).
    const NodeId ff = c.add_ff(g, prefix + "_r" + k);
    grants.push_back(ff);
  }
  return grants;
}

std::vector<NodeId> gated_register_bank(Circuit& c,
                                        const std::vector<NodeId>& data,
                                        NodeId enable,
                                        const std::string& prefix) {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::string k = std::to_string(i);
    const NodeId ff = c.add_ff(kNullNode, prefix + "_q" + k);
    const NodeId d = c.add_gate(GateType::kMux, {enable, data[i], ff},
                                prefix + "_d" + k);
    c.set_fanin(ff, 0, d);
    out.push_back(ff);
  }
  return out;
}

}  // namespace deepseq::blocks
