#pragma once

// Wire protocol of the serving tier: length-prefixed binary frames over a
// byte stream (TCP in practice — the codec itself is transport-agnostic and
// fully covered by in-memory round-trip tests).
//
// Frame layout:  [u32 payload length (LE)] [u8 message type] [payload]
//
// All integers are little-endian; floating-point values travel as their raw
// IEEE-754 bit patterns (u32 for float, u64 for double), so a served result
// is BIT-IDENTICAL to the same computation run in-process — the acceptance
// contract of the tier. Strings are u32 length + bytes. Every decoder is
// bounds-checked and fail-fast: a truncated or oversized frame throws Error
// naming what was being read, never reads past the payload, and must
// consume the payload exactly.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "netlist/circuit.hpp"
#include "netlist/structural_hash.hpp"
#include "sim/workload.hpp"

namespace deepseq::serve {

/// Protocol revision. A server rejects frames whose request carries a
/// different version (typed kBadRequest error naming both) instead of
/// misparsing them.
constexpr std::uint32_t kProtocolVersion = 1;

/// Frames larger than this are rejected by readers before allocation — a
/// corrupt length prefix must not look like a 4 GB message.
constexpr std::uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;

enum class MsgType : std::uint8_t {
  kTaskRequest = 1,
  kTaskResponse = 2,
  kErrorResponse = 3,
  kReloadRequest = 4,
  kReloadResponse = 5,
  kStatsRequest = 6,
  kStatsResponse = 7,
};

/// Typed failure classes a server reports back. kOverload* are the
/// admission-control sheds — the "reject rather than queue unboundedly"
/// half of the tier's contract; clients are expected to back off.
enum class ErrorCode : std::uint8_t {
  kBadRequest = 1,        // undecodable / unsupported version / unknown kind
  kOverloadQueueFull = 2, // bounded per-kind queue at capacity
  kOverloadDeadline = 3,  // estimated queue wait exceeds the deadline
  kShuttingDown = 4,      // server is draining
  kInternal = 5,          // compute raised (message carries what())
};

const char* error_code_name(ErrorCode code);

// ---- byte-level codec ------------------------------------------------------

/// Append-only encoder for one payload.
class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);
  void f64(double v);
  void str(const std::string& s);
  void bytes(const void* data, std::size_t n);

  const std::string& data() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked decoder over one payload. Every read throws Error (naming
/// `what` and the offset) on truncation; remaining() must be 0 when a
/// message decoder finishes (decode_* enforce this).
class WireReader {
 public:
  WireReader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::string& payload)
      : WireReader(payload.data(), payload.size()) {}

  std::uint8_t u8(const char* what);
  std::uint32_t u32(const char* what);
  std::uint64_t u64(const char* what);
  float f32(const char* what);
  double f64(const char* what);
  std::string str(const char* what);

  std::size_t remaining() const { return size_ - pos_; }
  /// Throws unless the payload was consumed exactly.
  void expect_done(const char* message_name) const;

 private:
  const void* raw(std::size_t n, const char* what);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- messages --------------------------------------------------------------

/// One task query as it travels to the server. The circuit goes over the
/// wire structurally complete (nodes, fanins, interface lists, names — names
/// matter: the power task's SAIF pipeline matches nets by name, and
/// bit-identity to an in-process run requires the same netlist byte for
/// byte).
struct TaskRequestMsg {
  std::uint64_t request_id = 0;
  api::TaskKind task = api::TaskKind::kEmbedding;
  std::string backend;  // registry name; empty = server default
  std::uint64_t init_seed = 1;
  /// Client-side latency budget in milliseconds, measured from server
  /// arrival; 0 = no deadline. Admission control sheds the request (typed
  /// kOverloadDeadline) when its estimated queue wait exceeds this.
  std::uint32_t deadline_ms = 0;
  Circuit circuit;
  Workload workload;
};

/// The served result: api::TaskResult plus which shard computed it (the
/// routing observability the bench's per-shard hit rates build on).
struct TaskResponseMsg {
  std::uint64_t request_id = 0;
  std::uint32_t shard = 0;
  api::TaskResult result;
};

struct ErrorResponseMsg {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::kInternal;
  std::string detail;
};

/// Hot weight push across every shard. `artifact_ref` is resolved against
/// the server's artifact::Store directory: "name@<16-hex-hash>" (unique
/// prefixes accepted) or "name@latest" / bare "name".
struct ReloadRequestMsg {
  std::uint64_t request_id = 0;
  std::string backend;  // registry name; empty = server default
  std::string artifact_ref;
};

struct ReloadResponseMsg {
  std::uint64_t request_id = 0;
  std::uint64_t fingerprint = 0;  // now serving on every shard
  std::uint32_t shards = 0;       // how many shards flipped
};

struct StatsRequestMsg {
  std::uint64_t request_id = 0;
};

struct StatsResponseMsg {
  std::uint64_t request_id = 0;
  std::string json;  // serve::Server::stats_json()
};

// ---- encode / decode -------------------------------------------------------

// Encoders produce the frame payload (no length prefix / type tag — the
// transport layer adds those via encode_frame). Decoders throw Error on any
// structural problem and verify exact payload consumption.

std::string encode(const TaskRequestMsg& m);
std::string encode(const TaskResponseMsg& m);
std::string encode(const ErrorResponseMsg& m);
std::string encode(const ReloadRequestMsg& m);
std::string encode(const ReloadResponseMsg& m);
std::string encode(const StatsRequestMsg& m);
std::string encode(const StatsResponseMsg& m);

TaskRequestMsg decode_task_request(const std::string& payload);
TaskResponseMsg decode_task_response(const std::string& payload);
ErrorResponseMsg decode_error_response(const std::string& payload);
ReloadRequestMsg decode_reload_request(const std::string& payload);
ReloadResponseMsg decode_reload_response(const std::string& payload);
StatsRequestMsg decode_stats_request(const std::string& payload);
StatsResponseMsg decode_stats_response(const std::string& payload);

/// [u32 length][u8 type][payload] — the bytes that go on the socket.
std::string encode_frame(MsgType type, const std::string& payload);

/// Incremental frame splitter for stream transports: feed bytes, take
/// complete frames. Throws Error on an oversized length prefix.
class FrameParser {
 public:
  struct Frame {
    MsgType type;
    std::string payload;
  };

  void feed(const char* data, std::size_t n);
  /// One complete frame, if buffered.
  std::optional<Frame> next();

 private:
  std::string buf_;
  std::size_t scan_ = 0;  // consumed prefix, compacted lazily
};

// ---- shared sub-codecs (exposed for tests) ---------------------------------

void encode_circuit(WireWriter& w, const Circuit& c);
Circuit decode_circuit(WireReader& r);
void encode_workload(WireWriter& w, const Workload& wl);
Workload decode_workload(WireReader& r);
void encode_tensor(WireWriter& w, const nn::Tensor& t);
nn::Tensor decode_tensor(WireReader& r);

}  // namespace deepseq::serve
