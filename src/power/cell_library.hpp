#pragma once

#include "netlist/circuit.hpp"

namespace deepseq {

/// Synthetic standard-cell capacitance library with 90 nm-like magnitudes —
/// the stand-in for the paper's TSMC 90 nm library (DESIGN.md §2). Every
/// power method flows through the same library, so relative errors (the
/// quantity Tables V/VI report) are insensitive to the absolute values.
struct CellLibrary {
  double vdd = 1.0;          // volts
  double frequency = 5e8;    // Hz
  /// Switched capacitance per gate type, farads (indexed by GateType).
  double cap[kNumGateTypes] = {
      /*CONST0*/ 0.0,    /*PI*/ 1.0e-15,  /*AND*/ 3.2e-15, /*NOT*/ 1.8e-15,
      /*FF*/ 9.5e-15,    /*BUF*/ 2.0e-15, /*OR*/ 3.4e-15,  /*NAND*/ 2.8e-15,
      /*NOR*/ 3.0e-15,   /*XOR*/ 5.2e-15, /*XNOR*/ 5.4e-15, /*MUX*/ 6.0e-15};

  double cap_of(GateType t) const { return cap[static_cast<int>(t)]; }

  /// Dynamic power of one gate toggling at `toggle_rate` transitions per
  /// cycle: P = 1/2 * C * Vdd^2 * f * rate (paper §V-A).
  double gate_power(GateType t, double toggle_rate) const {
    return 0.5 * cap_of(t) * vdd * vdd * frequency * toggle_rate;
  }
};

/// The default library used by all benches and examples.
const CellLibrary& default_cell_library();

}  // namespace deepseq
