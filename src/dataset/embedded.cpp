#include "dataset/embedded.hpp"

#include "dataset/blocks.hpp"
#include "netlist/bench_io.hpp"

namespace deepseq {

Circuit iscas89_s27() {
  static const char* kS27 = R"(# ISCAS'89 s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";
  return parse_bench_string(kS27, "s27");
}

Circuit counter4() {
  Circuit c("counter4");
  const NodeId en = c.add_pi("en");
  const auto q = blocks::counter(c, 4, en, "cnt");
  for (std::size_t i = 0; i < q.size(); ++i)
    c.add_po(q[i], "q" + std::to_string(i));
  c.validate();
  return c;
}

}  // namespace deepseq
