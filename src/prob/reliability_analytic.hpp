#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "sim/workload.hpp"

namespace deepseq {

/// Analytic (non-simulative) reliability estimation — the "Probabilistic"
/// baseline of Table VII, in the spirit of signal-probability reliability
/// analysis [31][32]. Each node carries r(v) = P(value under faults equals
/// the golden value). Input errors are assumed independent and signal
/// probabilities (for logical masking) independent as well; the per-gate
/// propagation formula is derived exactly from the gate's truth table:
///
///   r_prop = sum over input-correctness patterns and golden input values of
///            P(pattern) * P(values) * [gate(flipped inputs) == gate(inputs)]
///
/// followed by the gate's intrinsic flip: r = r_prop(1-eps) + (1-r_prop)eps.
/// FF reliabilities are solved by damped fixed-point iteration like the
/// switching estimator. The independence assumptions are exactly what fails
/// on reconvergent fanout, which the paper calls out as the weakness of
/// analytic methods.
struct ReliabilityEstimate {
  std::vector<double> node_reliability;  // P(node value correct)
  double circuit_reliability = 1.0;      // mean over primary outputs
  int iterations_used = 0;
};

struct ReliabilityOptions {
  double gate_error_rate = 0.0005;  // matches the Monte-Carlo GT epsilon
  int max_iterations = 100;
  double tolerance = 1e-9;
  double damping = 0.5;
};

ReliabilityEstimate estimate_reliability(const Circuit& c, const Workload& w,
                                         const ReliabilityOptions& opt = {});

}  // namespace deepseq
