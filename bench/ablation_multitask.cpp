// Ablation: the multi-task objective (paper §III-A). The paper argues that
// supervising transition AND logic probabilities jointly is what lets
// DeepSeq encode sequential behaviour — "the computation of transition
// probabilities of a gate or FF depends upon the logic probability of that
// gate or FF on two consecutive clock cycles". This bench trains the same
// DeepSeq architecture with TR-only (weight_lg = 0), LG-only
// (weight_tr = 0) and joint (Eq. 3) objectives and compares validation
// error per task. Reproduction target: joint training matches or beats the
// single-task specialists on their own task, confirming the tasks are
// mutually informative rather than competing.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace deepseq;
  using namespace deepseq::bench;

  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("ABLATION", "multi-task vs single-task training objective",
               cfg);

  std::vector<TrainSample> train, val;
  split_dataset(cfg, train, val);
  std::printf("[setup] %zu train / %zu validation circuits\n", train.size(),
              val.size());

  struct Row {
    const char* name;
    const char* tag;
    float weight_tr, weight_lg;
  };
  const Row rows[] = {
      {"TR only  (L = L_TR)", "mt_tr_only", 1.0f, 0.0f},
      {"LG only  (L = L_LG)", "mt_lg_only", 0.0f, 1.0f},
      {"Joint    (L = L_TR + L_LG, Eq. 3)", "mt_joint", 1.0f, 1.0f},
  };

  std::printf("\n%-36s | %9s %9s\n", "Objective", "PE(T_TR)", "PE(T_LG)");
  std::printf("%.*s\n", 60, std::string(60, '-').c_str());
  for (const Row& row : rows) {
    TrainOptions topt;
    topt.epochs = cfg.epochs;
    topt.lr = cfg.lr;
    topt.batch_size = cfg.batch;
    topt.weight_tr = row.weight_tr;
    topt.weight_lg = row.weight_lg;
    const DeepSeqModel model =
        train_or_load(ModelConfig::deepseq(cfg.hidden, cfg.iterations), train,
                      cfg, row.tag, topt);
    const EvalMetrics m = evaluate(model, val);
    std::printf("%-36s | %9.4f %9.4f\n", row.name, m.avg_pe_tr, m.avg_pe_lg);
    std::fflush(stdout);
  }
  std::printf(
      "\n(single-task rows are only meaningful on their own column; the\n"
      " joint objective should be competitive on both — paper §III-A)\n");
  return 0;
}
