#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace deepseq {
namespace {

TEST(Env, FallbackWhenUnset) {
  ::unsetenv("DEEPSEQ_TEST_KNOB");
  EXPECT_EQ(env_int("DEEPSEQ_TEST_KNOB", 42), 42);
  EXPECT_EQ(env_string("DEEPSEQ_TEST_KNOB", "dflt"), "dflt");
}

TEST(Env, ReadsIntegerValue) {
  ::setenv("DEEPSEQ_TEST_KNOB", "17", 1);
  EXPECT_EQ(env_int("DEEPSEQ_TEST_KNOB", 42), 17);
  ::unsetenv("DEEPSEQ_TEST_KNOB");
}

TEST(Env, UnparsableFallsBack) {
  ::setenv("DEEPSEQ_TEST_KNOB", "abc", 1);
  EXPECT_EQ(env_int("DEEPSEQ_TEST_KNOB", 9), 9);
  ::unsetenv("DEEPSEQ_TEST_KNOB");
}

TEST(Env, ReadsString) {
  ::setenv("DEEPSEQ_TEST_KNOB", "value", 1);
  EXPECT_EQ(env_string("DEEPSEQ_TEST_KNOB", "d"), "value");
  ::unsetenv("DEEPSEQ_TEST_KNOB");
}

}  // namespace
}  // namespace deepseq
