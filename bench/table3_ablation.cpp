// Regenerates Table III: the component ablation — how much the customized
// propagation scheme contributes on top of the best baseline, and how much
// dual attention adds on top of the customized propagation. Model weights
// are shared with table2 through the bench cache when run after it.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace deepseq;
  using namespace deepseq::bench;

  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("TABLE III", "effectiveness of DeepSeq components (ablation)", cfg);

  std::vector<TrainSample> train, val;
  split_dataset(cfg, train, val);

  struct Row {
    const char* label;
    ModelConfig config;
    double paper_tr, paper_lg;
  };
  const Row rows[] = {
      {"DAG-RecGNN / Attention",
       ModelConfig::dag_rec_gnn(AggregatorKind::kAttention, cfg.hidden, cfg.iterations),
       0.035, 0.095},
      {"DeepSeq w/ custom prop / Attention",
       ModelConfig::deepseq_simple_attention(cfg.hidden, cfg.iterations), 0.031,
       0.093},
      {"DeepSeq w/ custom prop / DualAtt",
       ModelConfig::deepseq(cfg.hidden, cfg.iterations), 0.028, 0.080},
  };

  std::printf("\n%-36s | %9s %9s || %9s %9s\n", "Configuration", "PE(T_TR)",
              "PE(T_LG)", "paper TR", "paper LG");
  std::printf("%.*s\n", 84, "--------------------------------------------------"
                            "----------------------------------");
  double prev_tr = 0, prev_lg = 0;
  bool first = true;
  // The "split" tag is shared with table2 / ablation_iterations, so rows
  // already trained by an earlier bench load from the cache.
  for (const Row& row : rows) {
    const DeepSeqModel model = train_or_load(row.config, train, cfg, "split");
    const EvalMetrics m = evaluate(model, val);
    std::printf("%-36s | %9.4f %9.4f || %9.3f %9.3f", row.label, m.avg_pe_tr,
                m.avg_pe_lg, row.paper_tr, row.paper_lg);
    if (!first) {
      std::printf("   (delta TR %+.1f%%, LG %+.1f%%)",
                  100.0 * (m.avg_pe_tr - prev_tr) / prev_tr,
                  100.0 * (m.avg_pe_lg - prev_lg) / prev_lg);
    }
    std::printf("\n");
    std::fflush(stdout);
    prev_tr = m.avg_pe_tr;
    prev_lg = m.avg_pe_lg;
    first = false;
  }
  std::printf("\npaper deltas: custom propagation -11.4%% TR / -2.1%% LG; "
              "dual attention -9.7%% TR / -14.0%% LG\n");
  return 0;
}
