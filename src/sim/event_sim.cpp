#include "sim/event_sim.hpp"

#include "common/error.hpp"

namespace deepseq {

EventDrivenSimulator::EventDrivenSimulator(const Circuit& c)
    : c_(c), levels_(comb_levelize(c)), fanouts_(c.fanouts()) {
  val_.assign(c.num_nodes(), 0);
  queued_.assign(c.num_nodes(), 0);
  buckets_.resize(static_cast<std::size_t>(levels_.depth) + 1);
  for (NodeId v = 0; v < c.num_nodes(); ++v)
    if (levels_.level[v] > 0) ++num_comb_gates_;
}

void EventDrivenSimulator::reset() {
  val_.assign(c_.num_nodes(), 0);
  queued_.assign(c_.num_nodes(), 0);
  for (auto& b : buckets_) b.clear();
  full_eval_pending_ = true;
  evals_ = 0;
  cycles_ = 0;
}

bool EventDrivenSimulator::evaluate(NodeId v) const {
  const Node& n = c_.node(v);
  const bool a = n.num_fanins > 0 && val_[n.fanin[0]];
  const bool b = n.num_fanins > 1 && val_[n.fanin[1]];
  // Node MUX fanin order is (select, then, else); eval_gate takes the select
  // in its third slot.
  if (n.type == GateType::kMux)
    return eval_gate(n.type, val_[n.fanin[1]] != 0, val_[n.fanin[2]] != 0, a);
  return eval_gate(n.type, a, b);
}

void EventDrivenSimulator::schedule_fanouts(NodeId v) {
  for (NodeId f : fanouts_[v]) {
    // FFs are latched by clock(), never evaluated during step().
    if (c_.type(f) == GateType::kFf) continue;
    if (!queued_[f]) {
      queued_[f] = 1;
      buckets_[static_cast<std::size_t>(levels_.level[f])].push_back(f);
    }
  }
}

void EventDrivenSimulator::step(const std::vector<bool>& pi_values) {
  if (pi_values.size() != c_.pis().size())
    throw Error("EventDrivenSimulator::step: wrong number of PI values");

  if (full_eval_pending_) {
    // First cycle after reset: stale zeros may violate gate functions (a
    // NOT of 0 must read 1), so evaluate every combinational gate once.
    full_eval_pending_ = false;
    for (std::size_t k = 0; k < pi_values.size(); ++k)
      val_[c_.pis()[k]] = pi_values[k] ? 1 : 0;
    for (std::size_t l = 1; l < levels_.by_level.size(); ++l)
      for (NodeId v : levels_.by_level[l]) {
        val_[v] = evaluate(v) ? 1 : 0;
        ++evals_;
      }
    // Anything queued by construction-time clock() calls is now stale.
    for (auto& b : buckets_) b.clear();
    std::fill(queued_.begin(), queued_.end(), 0);
    ++cycles_;
    return;
  }

  for (std::size_t k = 0; k < pi_values.size(); ++k) {
    const NodeId pi = c_.pis()[k];
    const std::uint8_t nv = pi_values[k] ? 1 : 0;
    if (val_[pi] != nv) {
      val_[pi] = nv;
      schedule_fanouts(pi);
    }
  }

  for (std::size_t l = 1; l < buckets_.size(); ++l) {
    // schedule_fanouts only appends to strictly deeper buckets while we
    // drain level l, so plain iteration is safe.
    for (std::size_t i = 0; i < buckets_[l].size(); ++i) {
      const NodeId v = buckets_[l][i];
      queued_[v] = 0;
      const std::uint8_t nv = evaluate(v) ? 1 : 0;
      ++evals_;
      if (nv != val_[v]) {
        val_[v] = nv;
        schedule_fanouts(v);
      }
    }
    buckets_[l].clear();
  }
  ++cycles_;
}

void EventDrivenSimulator::clock() {
  for (NodeId ff : c_.ffs()) {
    const std::uint8_t nv = val_[c_.node(ff).fanin[0]];
    if (nv != val_[ff]) {
      val_[ff] = nv;
      schedule_fanouts(ff);
    }
  }
}

}  // namespace deepseq
