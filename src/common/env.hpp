#pragma once

#include <cstdint>
#include <string>

namespace deepseq {

/// Read an integer environment variable, returning `fallback` when unset or
/// unparsable. Used by the bench harness to expose scale knobs
/// (DEEPSEQ_FULL, DEEPSEQ_EPOCHS, ...) without recompiling.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Read a floating-point environment variable (serving knobs like
/// DEEPSEQ_QPS accept fractional rates), returning `fallback` when unset or
/// unparsable.
double env_double(const char* name, double fallback);

/// Read a string environment variable.
std::string env_string(const char* name, const std::string& fallback);

/// True when DEEPSEQ_FULL=1: benches run at paper-scale parameters
/// (T=10, hidden 64, 10k-cycle workloads, paper-size test circuits).
bool full_scale();

}  // namespace deepseq
