#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "netlist/topology.hpp"
#include "nn/tensor.hpp"

namespace deepseq {

/// Node-feature index of the 4-d one-hot gate-type encoding (paper §III-B:
/// the sequential AIG contains AND, NOT, PI and FF only).
constexpr int kFeatureDim = 4;
int feature_index(GateType t);

/// One level of batched message passing: `targets` are the nodes updated at
/// this step (rows of the level's state matrix, in order); `sources` is the
/// flattened list of their message providers (predecessors in a forward
/// pass, successors in a reverse pass); `segment[i]` maps sources[i] to the
/// index of its target within `targets`.
struct LevelBatch {
  std::vector<NodeId> targets;
  std::vector<NodeId> sources;
  std::vector<int> segment;

  bool empty() const { return targets.empty(); }
};

/// Everything the GNN needs about one circuit, precomputed once:
///
/// * `features` — N x 4 one-hot gate types.
/// * `comb_forward` / `comb_reverse` — the paper's customized propagation
///   structure (Fig. 2): FF incoming edges removed so FFs are pseudo
///   primary inputs at level 0; forward batches cover combinational gates
///   in level order, reverse batches cover them in descending level order
///   with messages from comb-view successors (including FFs reading the
///   node as their D input).
/// * `ff_targets` / `ff_sources` — step 4 of the scheme: each FF's state is
///   replaced by the state of its D predecessor after every iteration.
/// * `baseline_forward` / `baseline_reverse` — the plain acyclified-DAG
///   schedule used by DAG-ConvGNN / DAG-RecGNN baselines: back edges
///   removed, FFs aggregate like ordinary nodes, no state-copy step.
struct CircuitGraph {
  int num_nodes = 0;
  nn::Tensor features;
  std::vector<NodeId> pis;  // workload rows are written onto these nodes
  std::vector<NodeId> consts;  // CONST0 nodes: pinned to 0 like PIs

  Levelization comb;
  std::vector<LevelBatch> comb_forward;
  std::vector<LevelBatch> comb_reverse;
  std::vector<NodeId> ff_targets;
  std::vector<NodeId> ff_sources;

  std::vector<LevelBatch> baseline_forward;
  std::vector<LevelBatch> baseline_reverse;
};

/// Build the graph for a strict sequential AIG. Throws CircuitError if the
/// circuit contains gate types outside {PI, AND, NOT, FF, CONST0};
/// constant-0 nodes are treated as pseudo-PIs pinned to probability 0.
CircuitGraph build_circuit_graph(const Circuit& aig);

}  // namespace deepseq
