#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "nn/tensor.hpp"

namespace deepseq::nn {

struct Op;  // op.hpp: the typed operation record built by the record layer
enum class OpKind : std::uint8_t;

/// A node in the computation graph. `value` is allocated (with its final
/// shape) as soon as the node is recorded and filled in when the owning
/// Graph flushes; `grad` is allocated lazily during backward().
struct VarNode {
  Tensor value;
  Tensor grad;  // empty until needed
  bool requires_grad = false;
  /// The taped Op computing this node (owned by the Graph's tape); null for
  /// leaves and in no-grad mode. Graph links live in the ops, whose
  /// creation-ordered destruction is iterative — nodes never point at each
  /// other, so deep unrolled chains can't recurse the destructor.
  Op* producer = nullptr;
  std::uint64_t id = 0;  // creation order: descending id is a reverse topo order
  /// Planner scratch: the flush epoch this node was last scheduled in and
  /// the producing op's index within that batch (the chain builder's
  /// producer lookup). Written only for op outputs, only by the thread
  /// flushing the owning graph; leaves (params, constants) are never
  /// written, so sharing them across concurrently-flushing graphs is safe.
  std::uint64_t plan_epoch = 0;
  int plan_wave = 0;
  /// State-slab support (Graph::slab / Graph::scatter_rows). A slab is one
  /// base node owning the storage plus a linear chain of *version* marker
  /// nodes (empty `value`, `slab_base` pointing at the base). Versions are
  /// consumed exactly once: the first scatter_rows on a version marks it
  /// consumed and yields the next version; reading or scattering a consumed
  /// version throws. The base itself has slab=true and a null slab_base.
  bool slab = false;
  bool slab_consumed = false;
  std::shared_ptr<VarNode> slab_base;  // null for the base node itself

  bool has_grad() const { return grad.rows() == value.rows() && grad.cols() == value.cols() && grad.size() > 0; }
  Tensor& ensure_grad() {
    if (!has_grad()) grad = Tensor(value.rows(), value.cols());
    return grad;
  }
};

using Var = std::shared_ptr<VarNode>;

/// DEEPSEQ_NN_SLAB knob (strict env_int): 0 disables slab-based state
/// recording (DeepSeqModel::propagate falls back to per-level state
/// matrices); any other value (and unset) enables it for no-grad graphs.
/// Read per propagate call, so a process can A/B it between runs.
bool nn_slab_from_env();

/// Create a trainable parameter (lives outside any Graph tape; gradients
/// accumulate across backward calls until an optimizer zeroes them).
Var make_param(Tensor value);
/// Create a non-trainable constant/input.
Var make_constant(Tensor value);

/// Reference to one row of a Var — the unit the GNN state map hands to
/// gather(): node states live as rows of per-level matrices.
struct RowRef {
  Var var;
  int row = 0;
};

/// Reverse-mode autograd over a record/plan/execute pipeline. Op methods
/// RECORD typed Op nodes (shape-checked, output tensor preallocated) instead
/// of computing inline; a flush PLANs the recorded batch into chain-fused
/// cut waves (nn::Plan: maximal single-consumer op chains run sequentially
/// as one task, barriers only at true fan-in/fan-out cuts; DEEPSEQ_NN_FUSE=0
/// falls back to per-op waves) and EXECUTEs them on the shared thread pool
/// (nn::Executor, DEEPSEQ_NN_THREADS) with results bit-identical to
/// sequential execution.
///
/// Outside a BatchScope every op is flushed as soon as it is recorded, so
/// `var->value` is always materialized from the caller's point of view —
/// eager semantics, with large kernels still chunked across the pool. Inside
/// a BatchScope (the per-level propagation path) ops accumulate and are
/// planned together on scope exit, exposing parallelism across independent
/// chains (rows of a level, levels of a flush group) as well as within
/// large kernels.
///
/// The tape gives backward() a creation-order topological sort, and clear()
/// breaks parent links iteratively to avoid deep recursive shared_ptr
/// destruction. Construct with grad_enabled=false for inference: executed
/// ops are discarded and intermediates free as soon as they go out of scope.
class Graph {
 public:
  explicit Graph(bool grad_enabled = true);
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  ~Graph();

  bool grad_enabled() const { return grad_enabled_; }

  Var constant(Tensor value);

  // ---- elementwise / linear algebra ---------------------------------------
  Var add(const Var& a, const Var& b);
  Var sub(const Var& a, const Var& b);
  Var mul(const Var& a, const Var& b);
  /// a (r x c) + row (1 x c), broadcast over rows.
  Var add_row(const Var& a, const Var& row);
  Var matmul(const Var& a, const Var& b);
  Var scale(const Var& a, float s);
  Var sigmoid(const Var& a);
  Var tanh_(const Var& a);
  Var relu(const Var& a);
  /// 1 - a (elementwise), used by the GRU update gate.
  Var one_minus(const Var& a);

  // ---- structure ops for level-batched message passing --------------------
  /// Horizontally concatenate equal-row-count blocks.
  Var concat_cols(const std::vector<Var>& blocks);
  /// Stack arbitrary rows of arbitrary Vars into a new matrix. Rows of slab
  /// *versions* (see slab()) are rewritten at record time to read the base
  /// slab tensor directly — the version only contributes a scheduling edge —
  /// so the gather fuses like any other row-aligned op instead of escaping
  /// into a per-level state matrix.
  Var gather(const std::vector<RowRef>& refs);

  // ---- state slabs ---------------------------------------------------------
  /// Create a state slab: one tensor holding every node's hidden-state row
  /// for a whole propagation sweep, updated in place by scatter_rows. The
  /// returned Var is both the base (owns the storage) and version 0.
  /// Inference-only: slabs reuse storage across versions, which the tape
  /// cannot replay, so a grad-enabled Graph refuses to scatter into one.
  Var slab(Tensor init);
  /// Overwrite rows of the slab behind `version` with the rows of `values`
  /// (row i -> slab row rows[i]; rows must be distinct) and return the next
  /// version. Consumes `version`: a second scatter, or a later gather of a
  /// consumed version, throws — the consume-exactly-once discipline that
  /// makes in-place updates safe under batched planning. Ordering against
  /// in-flight readers of the old rows is recorded as op inputs, so the
  /// planner sequences them before the overwrite.
  Var scatter_rows(const Var& version, const Var& values,
                   const std::vector<int>& rows);
  /// Per-segment softmax over a column of scores (E x 1). segment[e] in
  /// [0, num_segments); entries of a segment need not be contiguous.
  Var segment_softmax(const Var& scores, const std::vector<int>& segment,
                      int num_segments);
  /// values (E x d) * col (E x 1) broadcast across columns.
  Var mul_col(const Var& values, const Var& col);
  /// Sum rows of values (E x d) into their segment (num_segments x d).
  Var segment_sum(const Var& values, const std::vector<int>& segment,
                  int num_segments);
  /// Columnwise max of values (E x d) per segment (num_segments x d);
  /// gradient flows to the (first) argmax row of each segment/column only.
  /// Empty segments yield 0.
  Var segment_max(const Var& values, const std::vector<int>& segment,
                  int num_segments);

  // ---- losses --------------------------------------------------------------
  /// Mean absolute error against a fixed target; returns a 1x1 scalar.
  Var l1_loss(const Var& pred, const Tensor& target);
  /// Weighted mean absolute error; weight shape == pred shape.
  Var l1_loss_weighted(const Var& pred, const Tensor& target,
                       const Tensor& weight);
  /// Mean softmax cross-entropy of logits (B x C) against integer class
  /// labels (size B, values in [0, C)); returns a 1x1 scalar. Numerically
  /// stabilized by row-max subtraction.
  Var softmax_cross_entropy(const Var& logits, const std::vector<int>& labels);

  /// Backpropagate from a scalar (or any) root: seeds d(root)/d(root) = 1.
  /// Flushes pending ops first; per-op backward kernels run chunked on the
  /// executor where grad scatter targets are provably disjoint.
  void backward(const Var& root);

  /// Plan + execute every recorded-but-unexecuted op. A no-op when nothing
  /// is pending; called automatically per op outside a BatchScope and on
  /// BatchScope exit.
  void flush();

  /// Flush, then break all graph links recorded on this tape (values stay
  /// valid).
  void clear();

  std::size_t tape_size() const { return tape_.size(); }

 private:
  friend class BatchScope;

  /// Allocate the output node for `op`, register it with the pending batch
  /// (and the tape when gradients are required), and flush unless inside a
  /// BatchScope.
  Var record(Tensor out, Op* op);

  /// A fresh (or recycled) Op to record into. Ops live in a Graph-owned
  /// block arena: no-grad graphs return executed ops to a free list on
  /// flush (grad graphs on clear()), so steady-state inference re-records
  /// into warm Op objects whose member vectors keep their capacity —
  /// near-zero allocation per op, and no per-op control-block churn.
  Op* acquire_op(OpKind kind);

  /// Release an executed op's references (values stay valid) and return it
  /// to the free list with warm member-vector capacity.
  void recycle(Op* op);

  bool grad_enabled_;
  int batch_depth_ = 0;
  /// Readers of each live slab version recorded this flush: scatter_rows
  /// lists them as ordering inputs so no gather of the old rows can be
  /// scheduled after the overwrite. Entries die with the version (consumed
  /// by the next scatter) and any leftovers are dropped at flush — ordering
  /// only matters between ops planned together.
  std::vector<std::pair<VarNode*, Var>> slab_readers_;
  std::vector<Op*> pending_;   // recorded, not yet executed
  std::vector<Op*> tape_;      // retained for backward()
  std::vector<Op*> free_ops_;  // recycling pool

  /// Arena blocks owning every Op this graph ever recorded. Freed with the
  /// graph; recycled slots are reused in LIFO order (hot in cache).
  std::vector<std::unique_ptr<Op[]>> arena_;
  std::size_t arena_used_ = 0;  // slots handed out of arena_.back()
};

/// RAII deferred-execution region: ops recorded on `g` while the scope is
/// alive are planned and executed together when the outermost scope exits —
/// the unit the propagation loop hands to the planner (one level at a
/// time). Values of Vars recorded inside are not readable until the scope
/// closes.
class BatchScope {
 public:
  explicit BatchScope(Graph& g) : g_(g) { ++g_.batch_depth_; }
  ~BatchScope() {
    if (--g_.batch_depth_ == 0) g_.flush();
  }
  BatchScope(const BatchScope&) = delete;
  BatchScope& operator=(const BatchScope&) = delete;

 private:
  Graph& g_;
};

}  // namespace deepseq::nn
