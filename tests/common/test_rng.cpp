#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <bit>
#include <cmath>
#include <set>

namespace deepseq {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliWordExtremes) {
  Rng rng(17);
  EXPECT_EQ(rng.bernoulli_word(0.0), 0u);
  EXPECT_EQ(rng.bernoulli_word(1.0), ~0ULL);
}

class RngBernoulliWordP : public ::testing::TestWithParam<double> {};

TEST_P(RngBernoulliWordP, LaneFrequencyMatchesP) {
  const double p = GetParam();
  Rng rng(23);
  std::uint64_t ones = 0;
  const int words = 4000;
  for (int i = 0; i < words; ++i) ones += std::popcount(rng.bernoulli_word(p));
  const double freq = static_cast<double>(ones) / (64.0 * words);
  EXPECT_NEAR(freq, p, 0.01) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RngBernoulliWordP,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.99));

TEST(Rng, NormalMoments) {
  Rng rng(29);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a1(1), a2(1);
  Rng c1 = a1.split(), c2 = a2.split();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, SplitChildDiffersFromParent) {
  Rng parent(1);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.next_u64() == parent.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

}  // namespace
}  // namespace deepseq
