#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace deepseq {

/// Remove leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a single delimiter character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on any run of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Render a double with fixed precision (for table output).
std::string format_fixed(double value, int decimals);

/// Render a fraction as a percentage string, e.g. 0.0319 -> "3.19%".
std::string format_percent(double fraction, int decimals = 2);

}  // namespace deepseq
