#pragma once

#include <stdexcept>
#include <string>

namespace deepseq {

/// Base class for all errors raised by the DeepSeq library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an input file or text cannot be parsed.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line = -1)
      : Error(line >= 0 ? what + " (line " + std::to_string(line) + ")" : what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Raised when a circuit violates a structural invariant (dangling fanin,
/// wrong arity, combinational cycle, ...).
class CircuitError : public Error {
 public:
  using Error::Error;
};

/// Raised on tensor shape mismatches and other numeric-library misuse.
class ShapeError : public Error {
 public:
  using Error::Error;
};

}  // namespace deepseq
