#include "core/aggregator.hpp"

#include "common/error.hpp"

namespace deepseq {

using nn::Graph;
using nn::Tensor;
using nn::Var;

const char* aggregator_name(AggregatorKind k) {
  switch (k) {
    case AggregatorKind::kConvSum: return "Conv. Sum";
    case AggregatorKind::kAttention: return "Attention";
    case AggregatorKind::kDualAttention: return "Dual Attention";
  }
  return "?";
}

Aggregator::Aggregator(AggregatorKind kind, int hidden_dim, Rng& rng,
                       std::string name)
    : kind_(kind), dim_(hidden_dim), name_(std::move(name)) {
  switch (kind_) {
    case AggregatorKind::kConvSum:
      conv_w_ = nn::Linear(hidden_dim, hidden_dim, rng, name_ + ".conv");
      break;
    case AggregatorKind::kDualAttention:
      gate_w1_ = nn::make_param(Tensor::xavier(hidden_dim, 1, rng));
      gate_w2_ = nn::make_param(Tensor::xavier(hidden_dim, 1, rng));
      [[fallthrough]];
    case AggregatorKind::kAttention:
      att_w1_ = nn::make_param(Tensor::xavier(hidden_dim, 1, rng));
      att_w2_ = nn::make_param(Tensor::xavier(hidden_dim, 1, rng));
      break;
  }
}

int Aggregator::message_dim() const {
  return kind_ == AggregatorKind::kDualAttention ? 2 * dim_ : dim_;
}

Var Aggregator::aggregate(Graph& g, const Var& hv_prev_targets,
                          const Var& hv_prev_edges, const Var& hu,
                          const std::vector<int>& segment,
                          int num_targets) const {
  switch (kind_) {
    case AggregatorKind::kConvSum: {
      // Degree-normalized sum of linearly transformed source states.
      const Var lin = conv_w_.apply(g, hu);
      const Var summed = g.segment_sum(lin, segment, num_targets);
      Tensor inv_deg(num_targets, 1);
      for (const int s : segment) inv_deg.at(s, 0) += 1.0f;
      for (int i = 0; i < num_targets; ++i)
        inv_deg.at(i, 0) = inv_deg.at(i, 0) > 0 ? 1.0f / inv_deg.at(i, 0) : 0.0f;
      return g.mul_col(summed, g.constant(std::move(inv_deg)));
    }
    case AggregatorKind::kAttention: {
      // Eq. 5: alpha_uv = softmax_u(w1^T h_v^(t-1) + w2^T h_u^t).
      const Var scores =
          g.add(g.matmul(hv_prev_edges, att_w1_), g.matmul(hu, att_w2_));
      const Var alpha = g.segment_softmax(scores, segment, num_targets);
      return g.segment_sum(g.mul_col(hu, alpha), segment, num_targets);
    }
    case AggregatorKind::kDualAttention: {
      // Eq. 5 for the logic-probability message m_LG.
      const Var scores =
          g.add(g.matmul(hv_prev_edges, att_w1_), g.matmul(hu, att_w2_));
      const Var alpha = g.segment_softmax(scores, segment, num_targets);
      const Var m_lg = g.segment_sum(g.mul_col(hu, alpha), segment, num_targets);
      // Eq. 6: a gate between the node's previous state and its fresh logic
      // message. The paper writes this as a softmax over a single logit,
      // which is identically one; we realize the additive-attention form as
      // a sigmoid gate (see DESIGN.md).
      const Var gate_scores =
          g.add(g.matmul(hv_prev_targets, gate_w1_), g.matmul(m_lg, gate_w2_));
      const Var m_tr = g.mul_col(m_lg, g.sigmoid(gate_scores));
      // Eq. 7: final message m_TR || m_LG.
      return g.concat_cols({m_tr, m_lg});
    }
  }
  throw Error("Aggregator::aggregate: unknown kind");
}

void Aggregator::collect_params(nn::NamedParams& out) const {
  switch (kind_) {
    case AggregatorKind::kConvSum:
      conv_w_.collect_params(out);
      break;
    case AggregatorKind::kDualAttention:
      out.emplace_back(name_ + ".gate_w1", gate_w1_);
      out.emplace_back(name_ + ".gate_w2", gate_w2_);
      [[fallthrough]];
    case AggregatorKind::kAttention:
      out.emplace_back(name_ + ".att_w1", att_w1_);
      out.emplace_back(name_ + ".att_w2", att_w2_);
      break;
  }
}

}  // namespace deepseq
