// Embedding-serving demo: replay an open-loop request trace through the
// serving tier (src/serve/) — an in-process server on an ephemeral loopback
// port, requests over the wire, routed across Session shards by structural
// hash.
//
//   serve_embeddings [netlist_dir]
//
// With a directory argument (or DEEPSEQ_NETLIST_DIR), every .bench/.aag/.aig
// file in it becomes servable; without one, a small synthetic fleet of
// netlists is generated and written to ./serve_demo_netlists first, so the
// disk-loading path is exercised either way. Serving knobs come from the
// environment: DEEPSEQ_QPS, DEEPSEQ_THREADS, DEEPSEQ_REQUESTS,
// DEEPSEQ_SHARDS, DEEPSEQ_BACKEND (any registered backend name, or a
// comma-separated list for mixed traffic; unknown names abort listing the
// registry).

#include <cstdio>
#include <exception>
#include <filesystem>

#include "common/env.hpp"
#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "netlist/bench_io.hpp"
#include "runtime/server_loop.hpp"

using namespace deepseq;
using namespace deepseq::runtime;

namespace {

std::string ensure_demo_netlists() {
  const std::string dir = "serve_demo_netlists";
  std::filesystem::create_directories(dir);
  Rng rng(2024);
  for (int i = 0; i < 6; ++i) {
    GeneratorSpec spec;
    spec.name = "demo" + std::to_string(i);
    spec.num_pis = 6 + i;
    spec.num_ffs = 4 + i;
    spec.num_gates = 60 + 25 * i;
    const Circuit c = generate_circuit(spec, rng);
    write_bench_file(c, dir + "/" + spec.name + ".bench");
  }
  return dir;
}

}  // namespace

int main(int argc, char** argv) try {
  std::string dir = argc > 1 ? argv[1] : env_string("DEEPSEQ_NETLIST_DIR", "");
  if (dir.empty()) {
    dir = ensure_demo_netlists();
    std::printf("no netlist dir given; generated demo set in %s/\n",
                dir.c_str());
  }

  const std::vector<LoadedNetlist> netlists = load_netlist_dir(dir);
  if (netlists.empty()) {
    std::fprintf(stderr, "no servable netlists in %s\n", dir.c_str());
    return 1;
  }
  std::printf("serving %zu netlists from %s:\n", netlists.size(), dir.c_str());
  for (const LoadedNetlist& n : netlists)
    std::printf("  %-16s %6zu AIG nodes, %3zu PIs, %3zu FFs\n",
                n.name.c_str(), n.aig->num_nodes(), n.aig->pis().size(),
                n.aig->ffs().size());

  ServerConfig cfg = server_config_from_env();
  char threads[32];
  if (cfg.session.engine.threads > 0)
    std::snprintf(threads, sizeof(threads), "%d", cfg.session.engine.threads);
  else
    std::snprintf(threads, sizeof(threads), "auto");
  std::string backends;
  for (const std::string& b : cfg.backends)
    backends += (backends.empty() ? "" : ",") + b;
  std::printf(
      "\ntrace: %d requests, %.1f qps offered (Poisson), %s worker "
      "threads, backend(s): %s\n\n",
      cfg.total_requests, cfg.qps, threads, backends.c_str());

  const ServerStats stats = run_server_loop(cfg, netlists, /*verbose=*/true);
  return stats.completed > 0 ? 0 : 1;
} catch (const std::exception& e) {
  // e.g. an unknown DEEPSEQ_BACKEND — the registry fails fast and lists
  // the registered names.
  std::fprintf(stderr, "serve_embeddings: %s\n", e.what());
  return 1;
}
