// Microbenchmarks of the simulation substrate: bit-parallel sequential
// simulation throughput, activity collection, and Monte-Carlo fault
// injection, across circuit sizes.

#include <benchmark/benchmark.h>

#include "dataset/generator.hpp"
#include "netlist/aig.hpp"
#include "sim/fault_sim.hpp"
#include "sim/event_sim.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace deepseq;

Circuit make_circuit(int gates) {
  Rng rng(42);
  GeneratorSpec spec;
  spec.num_gates = gates;
  spec.num_ffs = gates / 12;
  spec.num_pis = 16;
  return generate_circuit(spec, rng);
}

void BM_SequentialStep(benchmark::State& state) {
  const Circuit c = make_circuit(static_cast<int>(state.range(0)));
  SequentialSimulator sim(c);
  Rng rng(1);
  std::vector<std::uint64_t> pi(c.pis().size());
  for (auto _ : state) {
    for (auto& w : pi) w = rng.next_u64();
    sim.step(pi);
    sim.clock();
    benchmark::DoNotOptimize(sim.values().data());
  }
  // 64 lanes per step: gate-evaluations per second.
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(c.num_nodes()));
}
BENCHMARK(BM_SequentialStep)->Arg(200)->Arg(2000)->Arg(20000);

void BM_EventDrivenStep(benchmark::State& state) {
  // Single-lane event-driven backend under a random (high-activity)
  // workload; compare items/s against one lane of BM_SequentialStep to see
  // the bit-parallel engine's 64x lane advantage vs the event engine's
  // skipped-evaluation advantage.
  const Circuit c = make_circuit(static_cast<int>(state.range(0)));
  EventDrivenSimulator sim(c);
  Rng rng(1);
  std::vector<bool> pi(c.pis().size());
  for (auto _ : state) {
    for (std::size_t k = 0; k < pi.size(); ++k) pi[k] = rng.bernoulli(0.5);
    sim.step(pi);
    sim.clock();
    benchmark::DoNotOptimize(sim.gate_evaluations());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.num_nodes()));
}
BENCHMARK(BM_EventDrivenStep)->Arg(200)->Arg(2000)->Arg(20000);

void BM_EventDrivenLowActivity(benchmark::State& state) {
  // Low-activity regime (paper SV-A1): only one PI toggles; the event
  // queue skips most of the netlist each cycle.
  const Circuit c = make_circuit(2000);
  EventDrivenSimulator sim(c);
  std::vector<bool> pi(c.pis().size(), false);
  int cycle = 0;
  for (auto _ : state) {
    pi[0] = (cycle++ & 1) != 0;
    sim.step(pi);
    sim.clock();
    benchmark::DoNotOptimize(sim.gate_evaluations());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(c.num_nodes()));
}
BENCHMARK(BM_EventDrivenLowActivity);

void BM_CollectActivity(benchmark::State& state) {
  const Circuit c = make_circuit(1000);
  Rng rng(2);
  const Workload w = random_workload(c, rng);
  ActivityOptions opt;
  opt.num_cycles = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const NodeActivity act = collect_activity(c, w, opt);
    benchmark::DoNotOptimize(act.toggle_count.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 64);
}
BENCHMARK(BM_CollectActivity)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_FaultSimulation(benchmark::State& state) {
  const Circuit c = make_circuit(1000);
  Rng rng(3);
  const Workload w = random_workload(c, rng);
  FaultSimOptions opt;
  opt.num_sequences = static_cast<int>(state.range(0));
  opt.cycles_per_sequence = 100;
  for (auto _ : state) {
    const FaultSimResult r = simulate_faults(c, w, opt);
    benchmark::DoNotOptimize(r.circuit_reliability);
  }
}
BENCHMARK(BM_FaultSimulation)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_AigDecomposition(benchmark::State& state) {
  const Circuit c = make_circuit(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const AigConversion conv = decompose_to_aig(c);
    benchmark::DoNotOptimize(conv.aig.num_nodes());
  }
}
BENCHMARK(BM_AigDecomposition)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
