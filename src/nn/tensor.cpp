#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace deepseq::nn {

std::size_t Tensor::checked_size(int rows, int cols) {
  if (rows < 0 || cols < 0) throw ShapeError("Tensor: negative dimension");
  return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
}

Tensor Tensor::full(int rows, int cols, float value) {
  Tensor t(rows, cols);
  t.fill(value);
  return t;
}

Tensor Tensor::scalar(float value) { return full(1, 1, value); }

Tensor Tensor::from_rows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Tensor();
  Tensor t(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != rows[0].size())
      throw ShapeError("Tensor::from_rows: ragged rows");
    std::copy(rows[r].begin(), rows[r].end(), t.row(static_cast<int>(r)));
  }
  return t;
}

Tensor Tensor::xavier(int rows, int cols, Rng& rng) {
  Tensor t(rows, cols);
  const double a = std::sqrt(6.0 / (rows + cols));
  for (std::size_t i = 0; i < t.size(); ++i)
    t.data()[i] = static_cast<float>(rng.uniform(-a, a));
  return t;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

float Tensor::sum() const {
  double s = 0.0;
  for (const float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::mean() const {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (const float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Tensor::shape_string() const {
  return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b))
    throw ShapeError(std::string(op) + ": shape mismatch " + a.shape_string() +
                     " vs " + b.shape_string());
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows())
    throw ShapeError("matmul: inner dimension mismatch " + a.shape_string() +
                     " * " + b.shape_string());
  Tensor out(a.rows(), b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.rows() != b.rows() || out.rows() != a.cols() || out.cols() != b.cols())
    throw ShapeError("matmul_tn_acc: shape mismatch");
  const int k = a.rows(), m = a.cols(), n = b.cols();
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.row(i);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.cols() != b.cols() || out.rows() != a.rows() || out.cols() != b.rows())
    throw ShapeError("matmul_nt_acc: shape mismatch");
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] += static_cast<float>(acc);
    }
  }
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] + b.data()[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] - b.data()[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
  return out;
}

Tensor add_row(const Tensor& a, const Tensor& row) {
  if (row.rows() != 1 || row.cols() != a.cols())
    throw ShapeError("add_row: need 1x" + std::to_string(a.cols()) +
                     " row vector, got " + row.shape_string());
  Tensor out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) out.at(r, c) = a.at(r, c) + row.at(0, c);
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = a.data()[i] * s;
  return out;
}

void add_in_place(Tensor& into, const Tensor& what) {
  check_same_shape(into, what, "add_in_place");
  for (std::size_t i = 0; i < into.size(); ++i) into.data()[i] += what.data()[i];
}

void scale_in_place(Tensor& t, float s) {
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] *= s;
}

Tensor sigmoid(const Tensor& a) {
  Tensor out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.data()[i] = 1.0f / (1.0f + std::exp(-a.data()[i]));
  return out;
}

Tensor tanh_t(const Tensor& a) {
  Tensor out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) out.data()[i] = std::tanh(a.data()[i]);
  return out;
}

Tensor relu(const Tensor& a) {
  Tensor out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.data()[i] = a.data()[i] > 0.0f ? a.data()[i] : 0.0f;
  return out;
}

}  // namespace deepseq::nn
