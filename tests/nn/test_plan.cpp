// Structural tests of the chain-fused plan layer, plus the CI perf gate.
//
// The planner's contract has two halves. Structural: a union-find
// "gather-cut" pass fuses maximal single-consumer op chains into chain
// tasks, leaving cut-wave barriers only at true fan-in/fan-out points — on
// a pll-shaped deep-narrow graph the fused plan must carry >= 10x fewer
// barriers than the unfused (DEEPSEQ_NN_FUSE=0) wave plan, a property of
// the plan alone and therefore assertable on a 1-core CI box. Behavioral:
// fused execution is bit-identical to unfused and to sequential — values
// and gradients — for every ModelConfig preset at 1/2/4 threads and for
// the degenerate DAG shapes (single op, diamond fan-in/out, aliased
// operands, empty flush).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "nn/executor.hpp"
#include "nn/op.hpp"
#include "runtime/thread_pool.hpp"
#include "support/nn_parity.hpp"

namespace deepseq {
namespace {

using nn::Chunk;
using nn::Graph;
using nn::Op;
using nn::OpKind;
using nn::Plan;
using nn::Tensor;
using nn::Var;
using testsupport::GradRun;
using testsupport::bit_identical;
using testsupport::parity_fixture;
using testsupport::parity_presets;
using testsupport::train_step_with;

void set_fuse(bool on) { ::setenv("DEEPSEQ_NN_FUSE", on ? "1" : "0", 1); }

/// Restore the ambient DEEPSEQ_NN_FUSE on test exit: the CI matrix runs
/// this binary under an explicit fuse leg whose setting must survive for
/// any test that doesn't pin fusion itself.
struct FuseGuard {
  FuseGuard() : had(std::getenv("DEEPSEQ_NN_FUSE") != nullptr),
                value(had ? std::getenv("DEEPSEQ_NN_FUSE") : "") {}
  ~FuseGuard() {
    if (had) {
      ::setenv("DEEPSEQ_NN_FUSE", value.c_str(), 1);
    } else {
      ::unsetenv("DEEPSEQ_NN_FUSE");
    }
  }
  bool had;
  std::string value;
};

/// Hand-built op DAGs for direct Plan::build structural checks.
struct OpFactory {
  std::vector<std::unique_ptr<Op>> pool;
  std::vector<Op*> ops;

  Var emit(OpKind kind, std::initializer_list<Var> inputs, int rows,
           int cols) {
    auto op = std::make_unique<Op>();
    op->kind = kind;
    op->inputs = inputs;
    op->scalar = 0.5f;  // kScale factor, harmless elsewhere
    Var out = nn::make_constant(Tensor(rows, cols));
    op->out = out;
    ops.push_back(op.get());
    pool.push_back(std::move(op));
    return out;
  }
};

TEST(Plan, EmptyBatchBuildsEmptyPlan) {
  const Plan plan = Plan::build({}, 4, /*fuse=*/true);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.barrier_count(), 0u);
}

TEST(Plan, SingleOpIsOneCutOneTask) {
  OpFactory f;
  const Var a = nn::make_constant(Tensor::full(4, 4, 1.0f));
  f.emit(OpKind::kSigmoid, {a}, 4, 4);
  for (const bool fuse : {true, false}) {
    const Plan plan = Plan::build(f.ops, 4, fuse);
    EXPECT_EQ(plan.barrier_count(), 1u);
    ASSERT_EQ(plan.tasks().size(), 1u);  // small kernel: no row split
    EXPECT_EQ(plan.tasks()[0].count, 1u);
    EXPECT_EQ(plan.stats().chains, 1u);
  }
}

TEST(Plan, LinearChainFusesToOneTask) {
  // Six small elementwise ops in a single-consumer chain: unfused they are
  // six barriers; fused they are one cut with one six-step chain task.
  OpFactory f;
  const Var a = nn::make_constant(Tensor::full(4, 4, 1.0f));
  Var x = f.emit(OpKind::kSigmoid, {a}, 4, 4);
  for (int i = 0; i < 5; ++i) x = f.emit(OpKind::kScale, {x}, 4, 4);

  const Plan fused = Plan::build(f.ops, 4, /*fuse=*/true);
  EXPECT_EQ(fused.barrier_count(), 1u);
  ASSERT_EQ(fused.tasks().size(), 1u);
  EXPECT_EQ(fused.tasks()[0].count, 6u);
  EXPECT_EQ(fused.stats().chains, 1u);
  EXPECT_EQ(fused.stats().fused_ops, 6u);
  EXPECT_EQ(fused.stats().chain_len_hist[nn::chain_len_bucket(6)], 1u);

  const Plan unfused = Plan::build(f.ops, 4, /*fuse=*/false);
  EXPECT_EQ(unfused.barrier_count(), 6u);
  EXPECT_EQ(unfused.stats().fused_ops, 0u);
}

TEST(Plan, DiamondKeepsFanOutCut) {
  // a -> {b, c} -> d: a's fan-out is a true cut (its two consumers may run
  // concurrently), so a stays alone; b, c and d share one fused chain
  // (every escape of b and c points at d). Two cuts fused, three unfused.
  OpFactory f;
  const Var leaf = nn::make_constant(Tensor::full(4, 4, 1.0f));
  const Var a = f.emit(OpKind::kSigmoid, {leaf}, 4, 4);
  const Var b = f.emit(OpKind::kScale, {a}, 4, 4);
  const Var c = f.emit(OpKind::kTanh, {a}, 4, 4);
  f.emit(OpKind::kAdd, {b, c}, 4, 4);

  const Plan fused = Plan::build(f.ops, 4, /*fuse=*/true);
  EXPECT_EQ(fused.barrier_count(), 2u);
  EXPECT_EQ(fused.stats().chains, 2u);
  EXPECT_EQ(fused.stats().fused_ops, 3u);

  const Plan unfused = Plan::build(f.ops, 4, /*fuse=*/false);
  EXPECT_EQ(unfused.barrier_count(), 3u);
}

TEST(Plan, AliasedOperandsPlanOnce) {
  // add(x, x): the producer edge must dedupe — one producer, one consumer,
  // a two-op chain, and execution must read the aliased operand correctly.
  OpFactory f;
  const Var a = nn::make_constant(Tensor::full(4, 4, 1.0f));
  const Var x = f.emit(OpKind::kSigmoid, {a}, 4, 4);
  f.emit(OpKind::kAdd, {x, x}, 4, 4);
  const Plan fused = Plan::build(f.ops, 4, /*fuse=*/true);
  EXPECT_EQ(fused.barrier_count(), 1u);
  EXPECT_EQ(fused.stats().fused_ops, 2u);
}

TEST(Plan, WideAlignedChainRowSplitsDeterministically) {
  // A heavy matmul -> add -> sigmoid chain over many rows stays
  // row-splittable after fusion: K row-range tasks in one cut, each
  // carrying every step, covering all rows disjointly.
  OpFactory f;
  const Var x = nn::make_constant(Tensor::full(512, 64, 0.01f));
  const Var w = nn::make_constant(Tensor::full(64, 64, 0.02f));
  const Var m = f.emit(OpKind::kMatmul, {x, w}, 512, 64);
  const Var s = f.emit(OpKind::kAdd, {m, m}, 512, 64);
  f.emit(OpKind::kSigmoid, {s}, 512, 64);

  const int threads = 4;
  const Plan fused = Plan::build(f.ops, threads, /*fuse=*/true);
  ASSERT_EQ(fused.barrier_count(), 1u);
  const auto& tasks = fused.tasks();
  ASSERT_EQ(tasks.size(), 4u);  // work >> kSplitWork: split caps at threads
  int rows_covered = 0;
  for (const auto& t : tasks) {
    ASSERT_EQ(t.count, 3u);  // every task carries the whole chain
    const Chunk* steps = fused.steps() + t.first;
    for (std::uint32_t s = 1; s < t.count; ++s) {
      EXPECT_EQ(steps[s].begin, steps[0].begin);  // shared row slice
      EXPECT_EQ(steps[s].end, steps[0].end);
    }
    rows_covered += steps[0].end - steps[0].begin;
  }
  EXPECT_EQ(rows_covered, 512);
}

TEST(Plan, GatherAbsorbsIntoSequentialChainOnlyWhenCheap) {
  // gather reading rows of an in-batch tensor cannot row-split (arbitrary
  // row fan-in), but a narrow chain fuses it sequentially — while a row
  // of heavy aligned work refuses the merge to keep its split.
  OpFactory f;
  const Var a = nn::make_constant(Tensor::full(8, 8, 1.0f));
  const Var x = f.emit(OpKind::kSigmoid, {a}, 8, 8);
  {
    auto op = std::make_unique<Op>();
    op->kind = OpKind::kGather;
    op->inputs = {x};
    for (int r = 0; r < 8; ++r) op->refs.push_back(nn::RowRef{x, 7 - r});
    op->out = nn::make_constant(Tensor(8, 8));
    f.ops.push_back(op.get());
    f.pool.push_back(std::move(op));
  }
  const Plan fused = Plan::build(f.ops, 4, /*fuse=*/true);
  EXPECT_EQ(fused.barrier_count(), 1u);  // tiny work: sequential fuse
  EXPECT_EQ(fused.stats().fused_ops, 2u);
}

// ---- behavioral parity: fused vs unfused vs sequential ---------------------
// (fixture, presets and the train step are shared with test_executor.cpp via
// tests/support/nn_parity.hpp so both suites pin the same contract)

TEST(PlanParity, FusedMatchesUnfusedForAllPresetsAndThreadCounts) {
  // Embeddings and gradients bit-identical across DEEPSEQ_NN_FUSE={1,0} x
  // threads={1,2,4} for every ModelConfig preset. The reference is the
  // fused sequential run; everything else must memcmp-match it.
  FuseGuard guard;
  runtime::ThreadPool pool(4);
  for (const ModelConfig& config : parity_presets()) {
    const DeepSeqModel model(config);

    set_fuse(true);
    nn::Executor sequential;
    Tensor reference;
    {
      nn::ExecutorScope scope(sequential);
      Graph g(/*grad_enabled=*/false);
      reference = model.embed(g, parity_fixture().graph, parity_fixture().workload, 7)->value;
    }
    const GradRun ref_grads = train_step_with(model, sequential);

    for (const bool fused : {true, false}) {
      set_fuse(fused);
      for (const int threads : {1, 2, 4}) {
        nn::Executor exec(&pool, threads);
        Tensor got;
        {
          nn::ExecutorScope scope(exec);
          Graph g(/*grad_enabled=*/false);
          got = model.embed(g, parity_fixture().graph, parity_fixture().workload, 7)->value;
        }
        EXPECT_TRUE(bit_identical(reference, got))
            << config.description() << " embed diverges at " << threads
            << " threads, fused=" << fused;
        const GradRun grads = train_step_with(model, exec);
        EXPECT_EQ(ref_grads.loss, grads.loss)
            << config.description() << " fused=" << fused;
        ASSERT_EQ(ref_grads.grads.size(), grads.grads.size());
        for (std::size_t i = 0; i < ref_grads.grads.size(); ++i)
          EXPECT_TRUE(bit_identical(ref_grads.grads[i], grads.grads[i]))
              << config.description() << " grad " << i << " diverges at "
              << threads << " threads, fused=" << fused;
      }
    }
  }
}

TEST(PlanParity, DegenerateGraphShapesMatchAcrossFuseModes) {
  // Diamond fan-in/out, aliased operands and an empty flush, executed
  // through the Graph in both fuse modes at 1 and 4 threads.
  FuseGuard guard;
  runtime::ThreadPool pool(4);
  auto run = [&](bool fused, int threads, float* aliased_grad) {
    set_fuse(fused);
    nn::Executor exec(&pool, threads);
    nn::ExecutorScope scope(exec);
    Graph g(/*grad_enabled=*/true);
    g.flush();  // empty flush: must be a no-op
    Var p = nn::make_param(Tensor::full(3, 3, 0.5f));
    Var a = g.sigmoid(p);
    Var b = g.scale(a, 2.0f);
    Var c = g.tanh_(a);       // diamond fan-out from a
    Var d = g.add(b, c);      // fan-in
    Var e = g.mul(d, d);      // aliased operands
    Var loss = g.l1_loss(e, Tensor(3, 3));
    g.backward(loss);
    *aliased_grad = p->grad.at(1, 1);
    return loss->value.at(0, 0);
  };
  float ref_grad = 0.0f;
  const float ref = run(true, 1, &ref_grad);
  for (const bool fused : {true, false}) {
    for (const int threads : {1, 4}) {
      float grad = 0.0f;
      const float loss = run(fused, threads, &grad);
      EXPECT_EQ(ref, loss) << "fused=" << fused << " threads=" << threads;
      EXPECT_EQ(ref_grad, grad) << "fused=" << fused << " threads=" << threads;
    }
  }
}

// ---- the CI structural perf gate -------------------------------------------

TEST(PlanStructure, PllShapedGraphCutsBarriersTenfold) {
  // A pll-shaped graph: deep (320 levels) and narrow (16 rows), each level
  // a gather off the previous level's output followed by a thin elementwise
  // chain — the shape whose per-wave barriers erased PR 3's speedup. The
  // fused plan must carry at most a tenth of the unfused plan's barriers.
  // Both plans are built at 4 planner threads regardless of host cores:
  // the assertion is structural, not a timing.
  FuseGuard guard;
  runtime::ThreadPool pool(4);
  constexpr int kLevels = 320;
  constexpr int kRows = 16;
  constexpr int kLevelsPerFlush = 32;

  auto trace = [&](bool fused) {
    set_fuse(fused);
    nn::Executor exec(&pool, 4);
    nn::ExecutorScope scope(exec);
    nn::ExecStats stats;
    nn::ExecTraceScope ts(stats);
    Graph g(/*grad_enabled=*/false);
    Var h = g.constant(Tensor::full(kRows, 8, 0.3f));
    int level = 0;
    while (level < kLevels) {
      nn::BatchScope group(g);
      for (int k = 0; k < kLevelsPerFlush && level < kLevels; ++k, ++level) {
        std::vector<nn::RowRef> refs;
        for (int r = 0; r < kRows; ++r)
          refs.push_back(nn::RowRef{h, kRows - 1 - r});
        Var x = g.gather(refs);
        for (int i = 0; i < 6; ++i) {
          x = g.scale(x, 1.01f);
          x = g.sigmoid(x);
        }
        h = x;
      }
    }
    return std::pair<nn::ExecStats, Tensor>(std::move(stats), h->value);
  };

  const auto [fused, fused_out] = trace(true);
  const auto [unfused, unfused_out] = trace(false);
  EXPECT_TRUE(bit_identical(fused_out, unfused_out));
  ASSERT_GT(fused.barriers, 0);
  ASSERT_GT(unfused.barriers, fused.barriers);
  // The gate: >= 10x fewer barriers, independent of host core count.
  EXPECT_LE(fused.barriers * 10, unfused.barriers)
      << "fused=" << fused.barriers << " unfused=" << unfused.barriers;
  // Fusion actually built long chains, not just fewer one-op tasks.
  EXPECT_GT(fused.fused_ops, (kLevels * 13) / 2);
}

// ---- dependency-counted scheduling and state slabs --------------------------

/// Save/restore one env knob (DEEPSEQ_NN_DEPSCHED / DEEPSEQ_NN_SLAB), so
/// these tests compose with any ambient CI matrix leg.
struct EnvVarGuard {
  explicit EnvVarGuard(const char* n)
      : name(n),
        had(std::getenv(n) != nullptr),
        value(had ? std::getenv(n) : "") {}
  ~EnvVarGuard() {
    if (had) {
      ::setenv(name, value.c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }
  const char* name;
  bool had;
  std::string value;
};

TEST(DepSchedParity, DepCountedMatchesBarrierForAllPresetsAndThreadCounts) {
  // Embeddings and gradients bit-identical across DEEPSEQ_NN_DEPSCHED={1,0}
  // x threads={1,2,4} for every ModelConfig preset; embeddings additionally
  // across DEEPSEQ_NN_SLAB={1,0} (slabs are inference-only). The reference
  // is the dep-scheduled, slab-enabled sequential run.
  FuseGuard fuse_guard;
  EnvVarGuard dep_guard("DEEPSEQ_NN_DEPSCHED");
  EnvVarGuard slab_guard("DEEPSEQ_NN_SLAB");
  set_fuse(true);
  runtime::ThreadPool pool(4);
  auto embed_with = [](const DeepSeqModel& model, nn::Executor& exec) {
    nn::ExecutorScope scope(exec);
    Graph g(/*grad_enabled=*/false);
    return model.embed(g, parity_fixture().graph, parity_fixture().workload, 7)
        ->value;
  };
  for (const ModelConfig& config : parity_presets()) {
    const DeepSeqModel model(config);
    ::setenv("DEEPSEQ_NN_DEPSCHED", "1", 1);
    ::setenv("DEEPSEQ_NN_SLAB", "1", 1);
    nn::Executor sequential;
    const Tensor reference = embed_with(model, sequential);
    const GradRun ref_grads = train_step_with(model, sequential);

    for (const bool dep : {true, false}) {
      ::setenv("DEEPSEQ_NN_DEPSCHED", dep ? "1" : "0", 1);
      for (const int threads : {1, 2, 4}) {
        nn::Executor exec(&pool, threads);
        for (const bool slab : {true, false}) {
          ::setenv("DEEPSEQ_NN_SLAB", slab ? "1" : "0", 1);
          EXPECT_TRUE(bit_identical(reference, embed_with(model, exec)))
              << config.description() << " embed diverges at " << threads
              << " threads, depsched=" << dep << ", slab=" << slab;
        }
        const GradRun grads = train_step_with(model, exec);
        EXPECT_EQ(ref_grads.loss, grads.loss)
            << config.description() << " depsched=" << dep;
        ASSERT_EQ(ref_grads.grads.size(), grads.grads.size());
        for (std::size_t i = 0; i < ref_grads.grads.size(); ++i)
          EXPECT_TRUE(bit_identical(ref_grads.grads[i], grads.grads[i]))
              << config.description() << " grad " << i << " diverges at "
              << threads << " threads, depsched=" << dep;
      }
    }
  }
}

TEST(PlanStructure, DepNodesCoverTasksWithProducerFirstEdges) {
  // The dependency layer of a built plan must be a consistent DAG covering
  // every task: task_node maps each task into its node, a node's in_tasks
  // equals the summed task_count of its distinct producers, and consumer
  // ids always exceed producer ids (nodes are emitted producers-first).
  OpFactory f;
  const Var leaf = nn::make_constant(Tensor::full(64, 32, 1.0f));
  const Var w = nn::make_constant(Tensor::full(32, 32, 0.1f));
  Var a = f.emit(OpKind::kMatmul, {leaf, w}, 64, 32);
  const Var b = f.emit(OpKind::kScale, {a}, 64, 32);
  const Var c = f.emit(OpKind::kTanh, {a}, 64, 32);
  const Var d = f.emit(OpKind::kAdd, {b, c}, 64, 32);
  f.emit(OpKind::kSigmoid, {d}, 64, 32);

  for (const bool fuse : {true, false}) {
    const Plan plan = Plan::build(f.ops, 4, fuse);
    ASSERT_TRUE(plan.dep_linked());
    const auto& nodes = plan.dep_nodes();
    ASSERT_EQ(plan.task_node().size(), plan.tasks().size());
    std::vector<std::uint32_t> in_tasks(nodes.size(), 0);
    std::uint32_t covered = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      covered += nodes[i].task_count;
      for (std::uint32_t t = 0; t < nodes[i].task_count; ++t)
        EXPECT_EQ(plan.task_node()[nodes[i].first_task + t], i);
      for (std::uint32_t c2 = nodes[i].consumers_begin;
           c2 < nodes[i].consumers_end; ++c2) {
        const std::uint32_t peer = plan.dep_consumers()[c2];
        EXPECT_GT(peer, i);  // producers-first emission
        in_tasks[peer] += nodes[i].task_count;
      }
    }
    EXPECT_EQ(covered, plan.tasks().size());
    for (std::size_t i = 0; i < nodes.size(); ++i)
      EXPECT_EQ(nodes[i].in_tasks, in_tasks[i]) << "node " << i;
  }
}

TEST(PlanStructure, DepSchedulingCollapsesGlobalSyncsToOnePerFlush) {
  // The same pll-shaped deep-narrow graph as the barrier gate above, traced
  // under both schedulers. Dependency-counted scheduling must pay exactly
  // one global sync per flush — independent of host core count, since the
  // counter is structural — where the barrier scheduler pays one per cut
  // (hundreds on this graph). This is the PR's structural CI gate.
  FuseGuard fuse_guard;
  EnvVarGuard dep_guard("DEEPSEQ_NN_DEPSCHED");
  set_fuse(true);
  runtime::ThreadPool pool(4);
  constexpr int kLevels = 320;
  constexpr int kRows = 16;
  constexpr int kLevelsPerFlush = 32;

  // Each level gathers the previous level AND adds a skip connection from
  // two levels back: the two-consumer fan-out is a true cut chain fusion
  // cannot contract (a purely linear recurrence would fuse whole flushes
  // into single chains, hiding the scheduler difference).
  auto trace = [&](bool dep) {
    ::setenv("DEEPSEQ_NN_DEPSCHED", dep ? "1" : "0", 1);
    nn::Executor exec(&pool, 4);
    nn::ExecutorScope scope(exec);
    nn::ExecStats stats;
    nn::ExecTraceScope ts(stats);
    Graph g(/*grad_enabled=*/false);
    Var prev = g.constant(Tensor::full(kRows, 8, 0.3f));
    Var skip = prev;
    int level = 0;
    while (level < kLevels) {
      nn::BatchScope group(g);
      for (int k = 0; k < kLevelsPerFlush && level < kLevels; ++k, ++level) {
        std::vector<nn::RowRef> refs;
        for (int r = 0; r < kRows; ++r)
          refs.push_back(nn::RowRef{prev, kRows - 1 - r});
        Var x = g.gather(refs);
        for (int i = 0; i < 3; ++i) {
          x = g.scale(x, 1.01f);
          x = g.sigmoid(x);
        }
        x = g.add(x, skip);
        skip = prev;
        prev = x;
      }
    }
    return std::pair<nn::ExecStats, Tensor>(std::move(stats), prev->value);
  };

  const auto [dep, dep_out] = trace(true);
  const auto [barrier, barrier_out] = trace(false);
  EXPECT_TRUE(bit_identical(dep_out, barrier_out));
  // One end-of-flush sync per flush, nothing else — however many cuts the
  // plans carry.
  EXPECT_EQ(dep.global_syncs, dep.flushes);
  EXPECT_EQ(dep.flushes, (kLevels + kLevelsPerFlush - 1) / kLevelsPerFlush);
  // The barrier scheduler pays per cut: at least tenfold on this shape.
  EXPECT_GE(barrier.global_syncs, dep.global_syncs * 10)
      << "dep=" << dep.global_syncs << " barrier=" << barrier.global_syncs;
  // Dep scheduling actually released chains downstream of the roots; the
  // barrier scheduler held those same chains behind barriers instead.
  EXPECT_GT(dep.released_chains, 0);
  EXPECT_EQ(barrier.released_chains, 0);
  EXPECT_GT(barrier.barriered_chains, 0);
  EXPECT_EQ(dep.barriered_chains, 0);
}

TEST(PlanStructure, SlabChainsFuseAndCountInHistogram) {
  // A slab-based deep-narrow recurrence: gather slab rows -> elementwise
  // chain -> scatter back. The gathers read the base tensor (no per-level
  // state matrices to escape into), so whole levels — scatter included —
  // must fuse into multi-op chains, and the chain-length histogram must
  // count those fused-slab chains in its >= 5-step buckets.
  FuseGuard fuse_guard;
  EnvVarGuard dep_guard("DEEPSEQ_NN_DEPSCHED");
  set_fuse(true);
  ::setenv("DEEPSEQ_NN_DEPSCHED", "1", 1);
  nn::Executor exec;  // sequential: histogram is structural
  nn::ExecutorScope scope(exec);
  nn::ExecStats stats;
  nn::ExecTraceScope ts(stats);
  constexpr int kLevels = 24;
  constexpr int kRows = 8;
  Graph g(/*grad_enabled=*/false);
  Var version = g.slab(Tensor::full(kRows, 8, 0.3f));
  {
    nn::BatchScope group(g);
    std::vector<int> targets(kRows);
    for (int r = 0; r < kRows; ++r) targets[r] = r;
    for (int level = 0; level < kLevels; ++level) {
      std::vector<nn::RowRef> refs;
      for (int r = 0; r < kRows; ++r)
        refs.push_back(nn::RowRef{version, kRows - 1 - r});
      Var x = g.gather(refs);
      for (int i = 0; i < 3; ++i) x = g.sigmoid(g.scale(x, 1.01f));
      version = g.scatter_rows(version, x, targets);
    }
  }
  EXPECT_EQ(stats.slab_gather_rows, kLevels * kRows);
  EXPECT_EQ(stats.slab_scatter_rows, kLevels * kRows);
  // Each level records 8 ops (gather + 6 elementwise + scatter). The
  // gather and the elementwise run must fuse into one chain per level (the
  // scatter stays its own cluster: its reader-ordering edges forbid joining
  // a potentially row-split chain), so at most 2 chains per level — far
  // fewer than the 8 waves the unfused planner would emit — and the
  // histogram must count the fused-slab chains in its >= 5-step buckets.
  ASSERT_GT(stats.chains, 0);
  EXPECT_LE(stats.chains, kLevels * 2);
  int long_chains = 0;
  for (int b = nn::chain_len_bucket(5); b < nn::kChainHistBuckets; ++b)
    long_chains += stats.chain_len_hist[b];
  EXPECT_GT(long_chains, 0);
}

}  // namespace
}  // namespace deepseq
