#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/sample.hpp"
#include "nn/adam.hpp"

namespace deepseq {

/// Average prediction error (Eq. 9) per task: mean over circuits of the
/// mean absolute node-level error.
struct EvalMetrics {
  double avg_pe_tr = 0.0;
  double avg_pe_lg = 0.0;
};

struct TrainOptions {
  int epochs = 50;            // paper §IV-A3
  float lr = 1e-4f;           // paper §IV-A3
  int batch_size = 16;        // gradient accumulation over circuits
  float grad_clip = 5.0f;     // global-norm clip (stability on deep unrolls)
  std::uint64_t shuffle_seed = 7;
  bool verbose = false;
  /// Per-task loss weights: L = weight_tr * L_TR + weight_lg * L_LG. The
  /// paper uses the unweighted sum (Eq. 3); setting one weight to zero
  /// gives the single-task ablation.
  float weight_tr = 1.0f;
  float weight_lg = 1.0f;
  /// Class-balanced transition loss: weight active (toggling) and static
  /// nodes equally instead of per-node. Plain L1 drives an
  /// under-discriminating model to the per-node *median* target, which is
  /// ~0 on low-activity circuits (paper §V-A1: ~70% static gates) and
  /// collapses power estimates; balancing keeps the objective informative
  /// at reduced fine-tuning budgets. Off by default (the paper's Eq. 3).
  bool balance_tr = false;
};

struct EpochStats {
  int epoch = 0;
  double mean_loss = 0.0;
  EvalMetrics val;  // filled when a validation set is supplied
};

/// Weight tensor for the class-balanced TR loss (TrainOptions::balance_tr):
/// entries whose target toggles (> 0.005) and entries that are static get
/// equal total mass; uniform when either class is empty.
nn::Tensor balanced_tr_weights(const nn::Tensor& target_tr);

/// Multi-task trainer minimizing L = L_TR + L_LG (Eq. 3) with ADAM.
class Trainer {
 public:
  Trainer(DeepSeqModel& model, const TrainOptions& options);

  /// Train on `train`; when `val` is non-null, evaluates after each epoch.
  std::vector<EpochStats> fit(const std::vector<TrainSample>& train,
                              const std::vector<TrainSample>* val = nullptr);

  const TrainOptions& options() const { return options_; }

  /// Snapshot the trained model as a versioned artifact at `path` (the
  /// trainer-to-Session currency: load it through
  /// api::BackendOptions::artifact / DEEPSEQ_ARTIFACT, or hot-push it with
  /// api::Session::reload_weights). Training provenance — epochs completed
  /// across fit() calls, final mean loss, learning rate — is embedded as
  /// manifest metadata. Returns the artifact content hash, the digest
  /// serving fingerprints derive from.
  std::uint64_t save_artifact(const std::string& path) const;

  /// Epochs completed across every fit() call on this trainer.
  int epochs_completed() const { return epochs_completed_; }

 private:
  DeepSeqModel& model_;
  TrainOptions options_;
  nn::Adam adam_;
  int epochs_completed_ = 0;
  double last_mean_loss_ = 0.0;
};

/// Average prediction error of `model` over `samples` (inference mode).
EvalMetrics evaluate(const DeepSeqModel& model,
                     const std::vector<TrainSample>& samples);

/// Per-node predictions for one sample (inference mode).
struct Predictions {
  nn::Tensor tr;  // N x 2
  nn::Tensor lg;  // N x 1
};
Predictions predict(const DeepSeqModel& model, const TrainSample& sample);

}  // namespace deepseq
