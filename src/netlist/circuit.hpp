#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/gate_type.hpp"

namespace deepseq {

using NodeId = std::uint32_t;
constexpr NodeId kNullNode = 0xFFFFFFFFu;

/// One gate/input/flip-flop. Fanins are stored inline (max arity 3: MUX).
struct Node {
  GateType type = GateType::kConst0;
  std::uint8_t num_fanins = 0;
  std::array<NodeId, 3> fanin{{kNullNode, kNullNode, kNullNode}};
};

/// A gate-level sequential netlist. Nodes are identified by dense ids in
/// creation order; primary outputs reference existing nodes. FF fanin 0 is
/// the D input (which may close a cycle back through combinational logic —
/// that is the defining feature of a sequential circuit). Combinational
/// cycles are invalid and rejected by validate().
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::string name) : name_(std::move(name)) {}

  // ---- construction -------------------------------------------------------

  NodeId add_pi(std::string name = {});
  NodeId add_const0(std::string name = {});
  /// Add a combinational gate. Fanin count must match gate_arity(type).
  NodeId add_gate(GateType type, const std::vector<NodeId>& fanins,
                  std::string name = {});
  NodeId add_not(NodeId a, std::string name = {});
  NodeId add_and(NodeId a, NodeId b, std::string name = {});
  /// Add a D flip-flop. `d` may be kNullNode and connected later with
  /// set_fanin() to build feedback loops.
  NodeId add_ff(NodeId d = kNullNode, std::string name = {});
  void set_fanin(NodeId node, int slot, NodeId source);
  /// Mark an existing node as a primary output.
  void add_po(NodeId node, std::string name = {});

  // ---- accessors ----------------------------------------------------------

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  GateType type(NodeId id) const { return nodes_[id].type; }
  int num_fanins(NodeId id) const { return nodes_[id].num_fanins; }
  NodeId fanin(NodeId id, int slot) const { return nodes_[id].fanin[slot]; }

  const std::vector<NodeId>& pis() const { return pis_; }
  const std::vector<NodeId>& ffs() const { return ffs_; }
  const std::vector<NodeId>& pos() const { return pos_; }

  const std::string& node_name(NodeId id) const { return names_[id]; }
  void set_node_name(NodeId id, std::string name) { names_[id] = std::move(name); }
  const std::string& po_name(std::size_t k) const { return po_names_[k]; }
  void set_po_name(std::size_t k, std::string name) { po_names_[k] = std::move(name); }
  /// Find a node by name; returns kNullNode when absent (linear scan).
  NodeId find_by_name(std::string_view name) const;

  // ---- derived structure --------------------------------------------------

  /// fanouts()[v] = nodes that read v (including FFs reading their D input).
  std::vector<std::vector<NodeId>> fanouts() const;

  /// Throws CircuitError on dangling fanins, wrong arity, PIs with fanins,
  /// unconnected FF D inputs, or combinational cycles.
  void validate() const;

  /// True if every node type is PI/AND/NOT/FF (strict sequential AIG).
  bool is_strict_aig() const;

  /// Count of nodes of each type.
  std::array<std::size_t, kNumGateTypes> type_counts() const;

 private:
  NodeId add_node(GateType type, std::string name);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::string> names_;
  std::vector<NodeId> pis_;
  std::vector<NodeId> ffs_;
  std::vector<NodeId> pos_;
  std::vector<std::string> po_names_;
};

}  // namespace deepseq
