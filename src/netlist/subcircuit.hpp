#pragma once

#include <vector>

#include "common/rng.hpp"
#include "netlist/circuit.hpp"

namespace deepseq {

/// Extract a connected subcircuit of roughly `target_nodes` nodes around a
/// random seed node (paper §III: training circuits are 150–300 node
/// subcircuits of the open-source benchmarks). The cut is closed by turning
/// every fanin that crosses the boundary into a fresh PI; nodes whose
/// fanout leaves the region (or is empty) become POs. Gate types, including
/// FFs and their feedback where fully contained, are preserved.
Circuit extract_subcircuit(const Circuit& c, std::size_t target_nodes, Rng& rng);

}  // namespace deepseq
