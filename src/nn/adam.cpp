#include "nn/adam.hpp"

#include <cmath>

namespace deepseq::nn {

Adam::Adam(NamedParams params, const Options& opt)
    : params_(std::move(params)), opt_(opt) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& [name, p] : params_) {
    (void)name;
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::zero_grad() {
  for (auto& [name, p] : params_) {
    (void)name;
    if (p->has_grad()) p->grad.zero();
  }
}

void Adam::step() {
  ++t_;
  // Optional global-norm clipping over all parameter gradients.
  float clip_scale = 1.0f;
  if (opt_.grad_clip > 0.0f) {
    double norm_sq = 0.0;
    for (const auto& [name, p] : params_) {
      (void)name;
      if (!p->has_grad()) continue;
      for (std::size_t i = 0; i < p->grad.size(); ++i)
        norm_sq += static_cast<double>(p->grad.data()[i]) * p->grad.data()[i];
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > opt_.grad_clip)
      clip_scale = static_cast<float>(opt_.grad_clip / norm);
  }

  const float bc1 = 1.0f - std::pow(opt_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(opt_.beta2, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Var& p = params_[k].second;
    if (!p->has_grad()) continue;
    Tensor& g = p->grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      const float gi = g.data()[i] * clip_scale;
      float& m = m_[k].data()[i];
      float& v = v_[k].data()[i];
      m = opt_.beta1 * m + (1.0f - opt_.beta1) * gi;
      v = opt_.beta2 * v + (1.0f - opt_.beta2) * gi * gi;
      const float mhat = m / bc1;
      const float vhat = v / bc2;
      p->value.data()[i] -= opt_.lr * mhat / (std::sqrt(vhat) + opt_.eps);
    }
  }
}

}  // namespace deepseq::nn
