#include "reliability/pipeline.hpp"
#include "reliability/reliability_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dataset/embedded.hpp"
#include "netlist/aig.hpp"

namespace deepseq {
namespace {

TrainSample s27_sample(std::uint64_t seed) {
  Rng rng(seed);
  const Circuit aig = decompose_to_aig(iscas89_s27()).aig;
  Workload w = random_workload(aig, rng);
  return make_sample("s27", aig, std::move(w), {400, 1}, rng.next_u64());
}

FaultSimOptions fast_faults() {
  FaultSimOptions f;
  f.num_sequences = 128;
  f.cycles_per_sequence = 30;
  f.gate_error_rate = 0.002;
  return f;
}

TEST(ReliabilitySample, LabelsFromFaultSimulation) {
  const ReliabilitySample s = make_reliability_sample(s27_sample(1), fast_faults());
  EXPECT_EQ(s.target_err.rows(), s.base.graph.num_nodes);
  EXPECT_EQ(s.target_err.cols(), 2);
  bool any_positive = false;
  for (std::size_t i = 0; i < s.target_err.size(); ++i) {
    EXPECT_GE(s.target_err.data()[i], 0.0f);
    EXPECT_LE(s.target_err.data()[i], 1.0f);
    any_positive |= s.target_err.data()[i] > 0.0f;
  }
  EXPECT_TRUE(any_positive);
}

TEST(ReliabilityModel, ForwardShape) {
  const DeepSeqModel pretrained(ModelConfig::deepseq(8, 2));
  const ReliabilityModel model(pretrained);
  const TrainSample s = s27_sample(2);
  nn::Graph g(false);
  const auto err = model.forward(g, s.graph, s.workload, s.init_seed);
  EXPECT_EQ(err->value.rows(), s.graph.num_nodes);
  EXPECT_EQ(err->value.cols(), 2);
}

TEST(ReliabilityModel, FitReducesError) {
  const DeepSeqModel pretrained(ModelConfig::deepseq(8, 2));
  ReliabilityModel model(pretrained);
  std::vector<ReliabilitySample> samples;
  for (int k = 0; k < 3; ++k)
    samples.push_back(make_reliability_sample(s27_sample(10 + k), fast_faults()));

  auto mean_err = [&]() {
    double acc = 0.0;
    std::size_t n = 0;
    for (const auto& s : samples) {
      nn::Graph g(false);
      const auto pred = model.forward(g, s.base.graph, s.base.workload,
                                      s.base.init_seed);
      for (std::size_t i = 0; i < pred->value.size(); ++i)
        acc += std::abs(pred->value.data()[i] - s.target_err.data()[i]);
      n += pred->value.size();
    }
    return acc / static_cast<double>(n);
  };
  const double before = mean_err();
  model.fit(samples, 20, 5e-3f);
  EXPECT_LT(mean_err(), before);
}

TEST(ReliabilityModel, EstimateCombinesLogicAndErrorHeads) {
  const DeepSeqModel pretrained(ModelConfig::deepseq(8, 1));
  const ReliabilityModel model(pretrained);
  const TrainSample s = s27_sample(3);
  const auto est = model.estimate(s.graph, s.workload, s.circuit->pos(), 7);
  EXPECT_EQ(est.node_reliability.size(),
            static_cast<std::size_t>(s.graph.num_nodes));
  for (const double r : est.node_reliability) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  EXPECT_GT(est.circuit_reliability, 0.0);
  EXPECT_LE(est.circuit_reliability, 1.0);
}

TEST(ReliabilityPipeline, RequiresFineTuneBeforeRun) {
  const DeepSeqModel pretrained(ModelConfig::deepseq(8, 1));
  ReliabilityPipelineOptions opt;
  ReliabilityPipeline pipeline(pretrained, opt);
  const TestDesign design = build_test_design("ptc", 0.02, 1);
  Rng rng(5);
  EXPECT_THROW(pipeline.run(design, low_activity_workload(design.netlist, rng, 0.5)),
               Error);
}

TEST(ReliabilityPipeline, EndToEndSmoke) {
  const DeepSeqModel pretrained(ModelConfig::deepseq(8, 1));
  ReliabilityPipelineOptions opt;
  opt.fault = fast_faults();
  opt.finetune_epochs = 2;
  ReliabilityPipeline pipeline(pretrained, opt);
  pipeline.finetune({s27_sample(20), s27_sample(21)});

  const TestDesign design = build_test_design("ptc", 0.03, 9);
  Rng rng(7);
  const auto cmp =
      pipeline.run(design, low_activity_workload(design.netlist, rng, 0.4));
  EXPECT_EQ(cmp.design, "ptc");
  EXPECT_GT(cmp.gt, 0.5);
  EXPECT_LE(cmp.gt, 1.0);
  EXPECT_GT(cmp.probabilistic, 0.5);
  EXPECT_GT(cmp.deepseq, 0.0);
  EXPECT_GE(cmp.probabilistic_error, 0.0);
  EXPECT_GE(cmp.deepseq_error, 0.0);
}

}  // namespace
}  // namespace deepseq
