#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/sample.hpp"
#include "nn/modules.hpp"

namespace deepseq {

/// How node embeddings are pooled into one graph-level vector.
enum class PoolKind {
  kMean,      // average of node embeddings
  kMax,       // columnwise max
  kAttention  // learned per-node scores, softmax-weighted sum
};

const char* pool_name(PoolKind k);

/// Graph-level readout (Eq. 2 of the paper): pools per-node embeddings
/// (N x hidden) into a single netlist embedding (1 x out_dim). This
/// implements the paper's §VI future-work direction of embedding netlists
/// at (sub)circuit level, in the style of FGNN [9]: the pooled vector is a
/// functionality/structure summary of the whole netlist.
class Readout {
 public:
  Readout() = default;
  Readout(PoolKind kind, int hidden_dim, int out_dim, Rng& rng,
          std::string name = "readout");

  PoolKind kind() const { return kind_; }
  int out_dim() const { return out_dim_; }

  /// node_embeddings is N x hidden (the h_v^T of DeepSeqModel::embed).
  nn::Var apply(nn::Graph& g, const nn::Var& node_embeddings) const;

  void collect_params(nn::NamedParams& out) const;

 private:
  PoolKind kind_ = PoolKind::kMean;
  int hidden_dim_ = 0, out_dim_ = 0;
  nn::Linear score_;  // attention pooling: per-node scalar score
  nn::Linear proj_;   // pooled vector -> out_dim
};

/// A labelled instance for netlist classification: a pre-built circuit
/// graph, a workload to condition the embeddings on, and a class id (e.g.
/// which benchmark family generated the netlist).
struct LabelledNetlist {
  std::string name;
  CircuitGraph graph;
  Workload workload;
  std::uint64_t init_seed = 1;
  int label = 0;
};

/// Netlist-family classifier on top of a frozen pre-trained DeepSeq
/// backbone: graph-level readout + linear head trained with softmax
/// cross-entropy. Demonstrates that the pre-trained node embeddings carry
/// enough structural signal to separate circuit families — the FGNN-style
/// netlist-classification downstream task of [9], here driven by DeepSeq
/// embeddings.
class NetlistClassifier {
 public:
  NetlistClassifier(const DeepSeqModel& backbone, PoolKind pool,
                    int num_classes, std::uint64_t seed);

  int num_classes() const { return num_classes_; }

  /// Class logits (1 x num_classes) for one netlist.
  nn::Var logits(nn::Graph& g, const LabelledNetlist& sample) const;

  /// Argmax class for one netlist (inference mode).
  int predict(const LabelledNetlist& sample) const;

  /// Fraction of correctly classified samples (inference mode).
  double accuracy(const std::vector<LabelledNetlist>& samples) const;

  /// Trainable parameters (readout + head); the backbone stays frozen.
  nn::NamedParams head_params() const;

 private:
  const DeepSeqModel& backbone_;
  int num_classes_ = 0;
  Readout readout_;
  nn::Linear head_;
};

struct ClassifierTrainOptions {
  int epochs = 30;
  float lr = 1e-3f;
  std::uint64_t shuffle_seed = 17;
  bool verbose = false;
};

struct ClassifierEpochStats {
  int epoch = 0;
  double mean_loss = 0.0;
  double train_accuracy = 0.0;
};

/// Train the classifier head (backbone frozen) with Adam on softmax
/// cross-entropy; returns per-epoch loss/accuracy.
std::vector<ClassifierEpochStats> train_classifier(
    NetlistClassifier& clf, const std::vector<LabelledNetlist>& train,
    const ClassifierTrainOptions& options);

}  // namespace deepseq
