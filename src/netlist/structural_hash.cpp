#include "netlist/structural_hash.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace deepseq {
namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// MUX fanins are (select, then, else): slot order is semantic. Every other
// multi-fanin type in the vocabulary is commutative.
bool commutative(GateType t) { return t != GateType::kMux; }

}  // namespace

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

std::string StructuralHash::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%016llx/n%u/i%u/o%u/f%u",
                static_cast<unsigned long long>(digest), num_nodes, num_pis,
                num_pos, num_ffs);
  return buf;
}

std::uint64_t exact_hash(const Circuit& c) {
  std::uint64_t h = mix64(c.num_nodes());
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    h = hash_mix(h, static_cast<std::uint64_t>(c.type(v)));
    for (int i = 0; i < c.num_fanins(v); ++i)
      h = hash_mix(h, c.fanin(v, i));
  }
  for (NodeId pi : c.pis()) h = hash_mix(h, pi);
  for (NodeId ff : c.ffs()) h = hash_mix(h, ff);
  for (NodeId po : c.pos()) h = hash_mix(h, po);
  return h;
}

StructuralHash structural_hash(const Circuit& c, int rounds) {
  const std::size_t n = c.num_nodes();
  StructuralHash out;
  out.num_nodes = static_cast<std::uint32_t>(n);
  out.num_pis = static_cast<std::uint32_t>(c.pis().size());
  out.num_pos = static_cast<std::uint32_t>(c.pos().size());
  out.num_ffs = static_cast<std::uint32_t>(c.ffs().size());

  if (rounds < 0) {
    // Enough rounds for labels to propagate across typical netlists
    // (including through one FF generation per round), capped so hashing a
    // pathological chain stays cheap. 64-bit labels make residual ambiguity
    // between far-apart structure astronomically unlikely for cache use.
    rounds = static_cast<int>(std::min<std::size_t>(n + 1, 64));
  }

  // Round 0: local labels. PIs mix in their interface ordinal because
  // workloads assign probabilities positionally; all other nodes start from
  // their gate type alone.
  std::vector<std::uint64_t> h(n), next(n);
  for (NodeId v = 0; v < n; ++v)
    h[v] = mix64(0xD5EEB5EE00000000ULL + static_cast<std::uint64_t>(c.type(v)));
  for (std::size_t k = 0; k < c.pis().size(); ++k)
    h[c.pis()[k]] = hash_mix(h[c.pis()[k]], mix64(0x5150ULL + k));

  // WL refinement: mix each node with its fanin labels (sorted when the
  // gate is commutative so the hash is invariant to fanin slot order).
  for (int r = 0; r < rounds; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      std::uint64_t acc = hash_mix(0xA11CEULL, h[v]);
      const int nf = c.num_fanins(v);
      std::uint64_t f[3] = {0, 0, 0};
      for (int i = 0; i < nf; ++i) f[i] = h[c.fanin(v, i)];
      if (nf > 1 && commutative(c.type(v))) {
        // Arity is at most 3: a fixed sort network avoids std::sort.
        if (f[0] > f[1]) std::swap(f[0], f[1]);
        if (nf > 2) {
          if (f[1] > f[2]) std::swap(f[1], f[2]);
          if (f[0] > f[1]) std::swap(f[0], f[1]);
        }
      }
      for (int i = 0; i < nf; ++i) acc = hash_mix(acc, f[i]);
      next[v] = acc;
    }
    h.swap(next);
  }

  // Digest: order-independent over nodes (sorted multiset), positional over
  // the PO interface (outputs are positional like PI workload rows).
  std::vector<std::uint64_t> sorted = h;
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t d = mix64(n);
  for (std::uint64_t v : sorted) d = hash_mix(d, v);
  for (std::size_t k = 0; k < c.pos().size(); ++k)
    d = hash_mix(d, hash_mix(mix64(0x9000ULL + k), h[c.pos()[k]]));
  out.digest = d;
  return out;
}

}  // namespace deepseq
