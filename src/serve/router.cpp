#include "serve/router.hpp"

#include <chrono>
#include <utility>

#include "artifact/artifact.hpp"
#include "common/error.hpp"
#include "netlist/structural_hash.hpp"

namespace deepseq::serve {
namespace {

/// Domain separator so the shard index is not simply the cache shard the
/// same digest picks inside a CircuitCache.
constexpr std::uint64_t kRouteSalt = 0x73657276652e7274ULL;  // "serve.rt"

}  // namespace

ShardRouter::ShardRouter(const RouterConfig& config) : config_(config) {
  if (config_.shards < 1)
    throw Error("ShardRouter: shards must be >= 1, got " +
                std::to_string(config_.shards));
  if (config_.workers_per_shard < 1)
    throw Error("ShardRouter: workers_per_shard must be >= 1, got " +
                std::to_string(config_.workers_per_shard));
  AdmissionConfig acfg = config_.admission;
  acfg.workers = config_.workers_per_shard;
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>(config_.session);
    shard->queue = std::make_unique<AdmissionQueue>(acfg);
    shards_.push_back(std::move(shard));
  }
  // Workers start only after every shard exists: a worker never observes a
  // partially-built router.
  for (auto& shard : shards_) {
    for (int w = 0; w < config_.workers_per_shard; ++w)
      shard->workers.emplace_back([this, &shard = *shard] { worker_loop(shard); });
  }
}

ShardRouter::~ShardRouter() {
  for (auto& shard : shards_) shard->queue->shutdown();
  for (auto& shard : shards_)
    for (std::thread& t : shard->workers) t.join();
}

int ShardRouter::shard_for(const StructuralHash& h) const {
  std::uint64_t mixed = hash_mix(kRouteSalt, h.digest);
  mixed = hash_mix(mixed, (static_cast<std::uint64_t>(h.num_nodes) << 32) |
                              h.num_ffs);
  return static_cast<int>(mixed % static_cast<std::uint64_t>(shards_.size()));
}

void ShardRouter::worker_loop(Shard& shard) {
  Job job;
  while (shard.queue->pop(job)) {
    job.run();
    shard.served.fetch_add(1, std::memory_order_relaxed);
  }
}

void ShardRouter::submit(api::TaskRequest request, std::uint64_t deadline_ns,
                         std::function<void(RoutedOutcome&&)> done) {
  int shard_index = 0;
  try {
    if (!request.circuit)
      throw Error("ShardRouter::submit: request without a circuit");
    shard_index = shard_for(structural_hash(*request.circuit));
  } catch (...) {
    RoutedOutcome out;
    out.value = std::current_exception();
    done(std::move(out));
    return;
  }
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  Job job;
  job.kind = static_cast<int>(request.task);
  job.deadline_ns = deadline_ns;
  // The two callbacks split one shared `done`: exactly one of them fires
  // (pop delivers to run; pop-side expiry and shutdown drain call shed).
  job.shed = [done, shard_index](ShedReason reason) {
    RoutedOutcome out;
    out.value = reason;
    out.shard = shard_index;
    done(std::move(out));
  };
  job.run = [this, &shard, shard_index, request = std::move(request),
             done]() mutable {
    RoutedOutcome out;
    out.shard = shard_index;
    const auto t0 = std::chrono::steady_clock::now();
    const int kind = static_cast<int>(request.task);
    try {
      out.value = shard.session.run_sync(request);
    } catch (...) {
      out.value = std::current_exception();
    }
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    // Feed the admission model from real service times — including failed
    // computes, which occupy a worker all the same.
    shard.queue->record_service_ns(kind, static_cast<std::uint64_t>(ns));
    done(std::move(out));
  };
  if (auto reason = shard.queue->try_push(std::move(job))) {
    RoutedOutcome out;
    out.value = *reason;
    out.shard = shard_index;
    done(std::move(out));
  }
}

std::uint64_t ShardRouter::reload_all(
    std::shared_ptr<const artifact::Artifact> artifact,
    const std::string& backend) {
  if (artifact == nullptr)
    throw Error("ShardRouter::reload_all: null artifact");
  std::uint64_t fingerprint = 0;
  bool have_fingerprint = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    try {
      const std::uint64_t fp =
          shards_[s]->session.reload_weights(artifact, backend);
      if (have_fingerprint && fp != fingerprint)
        throw Error("ShardRouter::reload_all: shard " + std::to_string(s) +
                    " flipped to a different fingerprint than shard 0 — "
                    "artifact resolution is not deterministic");
      fingerprint = fp;
      have_fingerprint = true;
    } catch (const Error&) {
      // Retryability: a shard that ALREADY serves the target fingerprint
      // (a retry after a partial earlier push) fails the Session's no-op
      // guard — tolerate exactly that case, re-throw anything else.
      if (have_fingerprint &&
          shard_fingerprint(static_cast<int>(s), backend) == fingerprint)
        continue;
      throw;
    }
  }
  return fingerprint;
}

std::uint64_t ShardRouter::shard_fingerprint(int i, const std::string& backend) {
  return shards_[static_cast<std::size_t>(i)]
      ->session.backend(backend)
      .info()
      .fingerprint;
}

ShardRouter::ShardStats ShardRouter::shard_stats(int i) const {
  const Shard& shard = *shards_[static_cast<std::size_t>(i)];
  ShardStats out;
  out.cache = shard.session.cache_stats();
  out.admission = shard.queue->counts();
  out.queued = shard.queue->size();
  out.served = shard.served.load(std::memory_order_relaxed);
  return out;
}

}  // namespace deepseq::serve
