#pragma once

// Directory-of-artifacts store (the PR 4 follow-up): a directory of .dsqa
// files read as a versioned manifest. Every file contributes one entry
// keyed (name, content hash) — name is the file stem, the hash is the
// artifact's deterministic content digest — so several versions of one
// model live side by side and are addressed as "name@<hex hash>" (unique
// prefixes accepted) or "name@latest". This is the serving tier's reload
// currency: a fleet pushes weights by dropping a file into the directory
// and telling every server "reload name@hash".
//
// Validation is strict and fail-fast, the DEEPSEQ_ARTIFACT contract: open()
// loads and hash-verifies EVERY .dsqa file up front, and a single corrupt,
// truncated or future-versioned file fails the whole open naming the file
// and the problem — a store that opened successfully serves only verified
// artifacts.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "artifact/artifact.hpp"

namespace deepseq::artifact {

struct StoreEntry {
  std::string name;            // file stem up to the first '@'
  std::uint64_t content_hash;  // verified content digest
  std::string hash_hex;        // 16 lowercase hex digits of content_hash
  std::string path;
  std::string backend_kind;    // manifest kind ("deepseq", "pace", ...)
  std::filesystem::file_time_type mtime;  // "latest" tie-breaks on hash
};

class Store {
 public:
  /// Scan `dir` for *.dsqa files, loading and verifying each. Throws Error
  /// when `dir` is not a directory or any artifact file fails to load
  /// (naming the file). An empty directory is a valid, empty store.
  static Store open(const std::string& dir);

  const std::string& dir() const { return dir_; }

  /// All entries, sorted by (name, hash_hex) — the manifest listing.
  const std::vector<StoreEntry>& entries() const { return entries_; }

  /// Resolve "name@<hex hash>" (any unambiguous prefix of the 16 hex
  /// digits), "name@latest", or bare "name" (same as @latest: newest mtime,
  /// ties broken toward the larger hash so the choice is deterministic).
  /// Throws Error naming the available versions when nothing (or more than
  /// one prefix match) fits.
  const StoreEntry& resolve_entry(const std::string& ref) const;

  /// resolve_entry + the loaded (already verified) artifact.
  std::shared_ptr<const Artifact> resolve(const std::string& ref) const;

  /// One-line JSON manifest: {"dir":...,"entries":[{"name":...,"hash":...,
  /// "kind":...},...]} — what a fleet controller lists to pick a push target.
  std::string manifest_json() const;

 private:
  std::string dir_;
  std::vector<StoreEntry> entries_;
  std::vector<std::shared_ptr<const Artifact>> artifacts_;  // parallel
};

/// Open the store DEEPSEQ_ARTIFACT_DIR points at; nullptr when the variable
/// is unset or empty. Same fail-fast contract as DEEPSEQ_ARTIFACT: a
/// nonexistent directory or any invalid artifact file inside throws an
/// Error naming the variable and the path — never a silent empty store.
std::shared_ptr<const Store> store_from_env();

}  // namespace deepseq::artifact
