#include "runtime/server_loop.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "netlist/aig.hpp"
#include "netlist/aiger_io.hpp"
#include "netlist/bench_io.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace deepseq::runtime {

std::vector<LoadedNetlist> load_netlist_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<LoadedNetlist> out;
  if (!fs::is_directory(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    const std::string ext = entry.path().extension().string();
    try {
      Circuit c;
      if (ext == ".bench") {
        c = parse_bench_file(path);
      } else if (ext == ".aag") {
        c = parse_aiger_file(path);
      } else if (ext == ".aig") {
        c = parse_aiger_binary_file(path);
      } else {
        continue;
      }
      c.validate();
      if (!c.is_strict_aig()) c = decompose_to_aig(c).aig;
      LoadedNetlist ln;
      ln.name = entry.path().stem().string();
      ln.aig = std::make_shared<const Circuit>(std::move(c));
      out.push_back(std::move(ln));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[serve] skipping %s: %s\n", path.c_str(),
                   e.what());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LoadedNetlist& a, const LoadedNetlist& b) {
              return a.name < b.name;
            });
  return out;
}

ServerConfig server_config_from_env() {
  ServerConfig cfg;
  cfg.qps = env_double("DEEPSEQ_QPS", cfg.qps);
  cfg.session.engine.threads = static_cast<int>(
      env_int("DEEPSEQ_THREADS", cfg.session.engine.threads));
  cfg.total_requests =
      static_cast<int>(env_int("DEEPSEQ_REQUESTS", cfg.total_requests));
  cfg.shards = static_cast<int>(env_int("DEEPSEQ_SHARDS", cfg.shards));

  // Resolve the requested backend(s) against the registry: every name must
  // be registered; unknown names throw listing the alternatives instead of
  // silently serving the default.
  const auto& registry = api::BackendRegistry::global();
  const std::string requested = env_string("DEEPSEQ_BACKEND", "");
  if (!requested.empty()) {
    cfg.backends.clear();
    for (const std::string& name : split(requested, ',')) {
      const std::string trimmed{trim(name)};
      if (trimmed.empty()) continue;
      cfg.backends.push_back(registry.resolve(trimmed, "deepseq"));
    }
  }
  if (cfg.backends.empty()) cfg.backends = {"deepseq"};
  cfg.session.backend = cfg.backends.front();
  return cfg;
}

LatencySummary summarize_latencies(const std::vector<double>& total_ms) {
  obs::Histogram hist;
  for (double v : total_ms) hist.record_ms(v);
  return hist.summary(1e-6);  // recorded ns -> reported ms
}

ServerStats run_server_loop(const ServerConfig& config,
                            const std::vector<LoadedNetlist>& netlists,
                            bool verbose) {
  ServerStats stats;
  stats.offered_qps = config.qps;
  if (netlists.empty() || config.total_requests <= 0) return stats;

  // The replay is a genuine client of the serving tier: requests cross a
  // loopback socket into the shard router, so the trace exercises the one
  // request path production traffic takes.
  serve::ServeConfig serve_cfg;
  serve_cfg.router.shards = std::max(1, config.shards);
  serve_cfg.router.workers_per_shard =
      config.workers_per_shard > 0
          ? config.workers_per_shard
          : std::max(1, config.session.engine.threads);
  serve_cfg.router.session = config.session;
  serve::Server server(serve_cfg);
  serve::Client client(server.port());
  Rng rng(config.seed);

  // DEEPSEQ_METRICS=<seconds>: print a per-period obs metrics delta while
  // the trace replays — the live view of queue depth / batch size / task
  // counters a long soak needs. One background thread; joined (via the cv)
  // before the function computes its final stats.
  const double metrics_period_s = env_double("DEEPSEQ_METRICS", 0.0);
  std::mutex metrics_mu;
  std::condition_variable metrics_cv;
  bool metrics_stop = false;
  std::thread metrics_printer;
  if (metrics_period_s > 0.0) {
    metrics_printer = std::thread([&] {
      obs::Snapshot prev = obs::Registry::global().snapshot();
      std::unique_lock<std::mutex> lock(metrics_mu);
      while (!metrics_cv.wait_for(
          lock, std::chrono::duration<double>(metrics_period_s),
          [&] { return metrics_stop; })) {
        obs::Snapshot now = obs::Registry::global().snapshot();
        std::printf("[metrics] %s\n",
                    obs::to_json(obs::delta(now, prev)).c_str());
        std::fflush(stdout);
        prev = std::move(now);
      }
    });
  }

  // Per-netlist workload pool: the trace cycles through a bounded set so
  // repeated (circuit, workload) pairs occur — the cacheable traffic a real
  // serving deployment sees for hot designs.
  const int wl_count = std::max(1, config.workloads_per_netlist);
  std::vector<std::vector<Workload>> workloads(netlists.size());
  for (std::size_t i = 0; i < netlists.size(); ++i)
    for (int k = 0; k < wl_count; ++k)
      workloads[i].push_back(random_workload(*netlists[i].aig, rng));

  std::vector<std::string> backends = config.backends;
  if (backends.empty()) backends.push_back(config.session.backend);

  // Draw the open-loop arrival schedule up front.
  const double mean_gap_s = 1.0 / std::max(1e-6, config.qps);
  std::vector<double> arrival_s(
      static_cast<std::size_t>(config.total_requests));
  double t = 0.0;
  for (double& a : arrival_s) {
    const double gap = config.poisson
                           ? -mean_gap_s * std::log(1.0 - rng.uniform())
                           : mean_gap_s;
    t += gap;
    a = t;
  }

  std::vector<std::future<serve::TaskReply>> futures;
  std::vector<std::chrono::steady_clock::time_point> sent_at;
  futures.reserve(arrival_s.size());
  sent_at.reserve(arrival_s.size());
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < arrival_s.size(); ++i) {
    const auto due =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(arrival_s[i]));
    std::this_thread::sleep_until(due);  // open loop: never waits on replies

    api::TaskRequest req;
    const std::size_t n = rng.uniform_index(netlists.size());
    req.circuit = netlists[n].aig;
    req.workload = workloads[n][rng.uniform_index(
        static_cast<std::uint64_t>(wl_count))];
    req.task = api::TaskKind::kEmbedding;
    req.backend = backends[rng.uniform_index(backends.size())];
    req.init_seed = 7;  // fixed: embeddings for equal inputs are cacheable
    sent_at.push_back(std::chrono::steady_clock::now());
    futures.push_back(client.submit(req, config.deadline_ms));
  }

  std::vector<double> total_ms, queue_ms, compute_ms;
  total_ms.reserve(futures.size());
  queue_ms.reserve(futures.size());
  compute_ms.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      const serve::TaskReply reply = futures[i].get();
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - sent_at[i])
              .count();
      total_ms.push_back(wall_ms);
      queue_ms.push_back(std::max(0.0, wall_ms - reply.result.total_ms));
      compute_ms.push_back(reply.result.compute_ms);
      ++stats.completed;
    } catch (const serve::ServeError& e) {
      if (e.overloaded()) {
        ++stats.shed;
      } else {
        ++stats.failed;
      }
      if (verbose)
        std::fprintf(stderr, "[serve] request rejected: %s\n", e.what());
    } catch (const std::exception& e) {
      ++stats.failed;
      if (verbose) std::fprintf(stderr, "[serve] request failed: %s\n", e.what());
    }
  }
  if (metrics_printer.joinable()) {
    {
      std::lock_guard<std::mutex> lock(metrics_mu);
      metrics_stop = true;
    }
    metrics_cv.notify_one();
    metrics_printer.join();
    // Final window so short runs (shorter than one period) still print.
    std::printf("[metrics] %s\n", obs::snapshot_json().c_str());
    std::fflush(stdout);
  }

  const auto end = std::chrono::steady_clock::now();
  stats.wall_seconds = std::chrono::duration<double>(end - start).count();
  stats.achieved_qps = stats.wall_seconds > 0.0
                           ? static_cast<double>(stats.completed) /
                                 stats.wall_seconds
                           : 0.0;
  stats.latency = summarize_latencies(total_ms);
  stats.queue = summarize_latencies(queue_ms);
  stats.compute = summarize_latencies(compute_ms);
  for (int s = 0; s < server.router().num_shards(); ++s) {
    const runtime::CircuitCache::Stats shard =
        server.router().shard_stats(s).cache;
    auto add = [](CacheCounters& into, const CacheCounters& from) {
      into.hits += from.hits;
      into.misses += from.misses;
      into.evictions += from.evictions;
    };
    add(stats.cache.structures, shard.structures);
    add(stats.cache.embeddings, shard.embeddings);
    add(stats.cache.regressions, shard.regressions);
    stats.cache.structure_entries += shard.structure_entries;
    stats.cache.embedding_entries += shard.embedding_entries;
    stats.cache.regression_entries += shard.regression_entries;
  }

  if (verbose) {
    std::printf(
        "[serve] %zu/%zu ok (%zu shed), wall %.2fs, offered %.1f qps, "
        "achieved %.1f qps, %d shard(s) on 127.0.0.1:%u\n",
        stats.completed, stats.completed + stats.failed + stats.shed,
        stats.shed, stats.wall_seconds, stats.offered_qps,
        stats.achieved_qps, server.router().num_shards(),
        static_cast<unsigned>(server.port()));
    std::printf(
        "[serve] total ms:   mean %.2f p50 %.2f p90 %.2f p99 %.2f max "
        "%.2f\n",
        stats.latency.mean, stats.latency.p50, stats.latency.p90,
        stats.latency.p99, stats.latency.max);
    std::printf(
        "[serve] queue ms:   mean %.2f p50 %.2f p90 %.2f p99 %.2f max "
        "%.2f\n",
        stats.queue.mean, stats.queue.p50, stats.queue.p90, stats.queue.p99,
        stats.queue.max);
    std::printf(
        "[serve] compute ms: mean %.2f p50 %.2f p90 %.2f p99 %.2f max "
        "%.2f\n",
        stats.compute.mean, stats.compute.p50, stats.compute.p90,
        stats.compute.p99, stats.compute.max);
    std::printf(
        "[serve] cache: structures %llu/%llu hits (%zu entries), embeddings "
        "%llu/%llu hits (%zu entries), %llu evictions\n",
        static_cast<unsigned long long>(stats.cache.structures.hits),
        static_cast<unsigned long long>(stats.cache.structures.hits +
                                        stats.cache.structures.misses),
        stats.cache.structure_entries,
        static_cast<unsigned long long>(stats.cache.embeddings.hits),
        static_cast<unsigned long long>(stats.cache.embeddings.hits +
                                        stats.cache.embeddings.misses),
        stats.cache.embedding_entries,
        static_cast<unsigned long long>(stats.cache.embeddings.evictions +
                                        stats.cache.structures.evictions));
  }
  return stats;
}

}  // namespace deepseq::runtime
