// Bit-identity pins of the SIMD chain kernels (src/nn/kernels.*): every
// vectorized routine must produce byte-identical output to the scalar
// fallback — the executor's original loops — on every size, including the
// non-multiple-of-8 tails, special values (negative zero, infinities, NaN
// for relu), and the matmul zero-skip. The suite compares the two dispatch
// paths directly via the DEEPSEQ_NN_SIMD gate; on hosts without AVX2 both
// paths are scalar and the pins hold trivially.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "nn/kernels.hpp"

namespace deepseq::nn::kernels {
namespace {

/// Restore the ambient DEEPSEQ_NN_SIMD (and the process-global gate) on
/// test exit, so this binary composes with the CI matrix's simd legs.
struct SimdGuard {
  SimdGuard()
      : had(std::getenv("DEEPSEQ_NN_SIMD") != nullptr),
        value(had ? std::getenv("DEEPSEQ_NN_SIMD") : "") {}
  ~SimdGuard() {
    if (had) {
      ::setenv("DEEPSEQ_NN_SIMD", value.c_str(), 1);
    } else {
      ::unsetenv("DEEPSEQ_NN_SIMD");
    }
    refresh_from_env();
  }
  bool had;
  std::string value;
};

void set_simd(bool on) {
  ::setenv("DEEPSEQ_NN_SIMD", on ? "1" : "0", 1);
  refresh_from_env();
}

bool bytes_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Deterministic "awkward" values: mixed signs and magnitudes whose sums
/// and products are rounding-sensitive, so any reassociation or FMA
/// contraction in the vector path would flip low bits.
std::vector<float> pattern(std::size_t n, std::uint32_t seed) {
  std::vector<float> v(n);
  std::uint32_t s = seed * 2654435761u + 12345u;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 1664525u + 1013904223u;
    const float mag = static_cast<float>(s >> 8) / 16777216.0f;  // [0, 1)
    const float scaled = (mag - 0.5f) * ((i % 7 == 0) ? 1e-6f : 3.7e3f);
    v[i] = (i % 11 == 3) ? -0.0f : scaled;
  }
  return v;
}

// The tail sizes that matter: below one lane, exactly one lane, lane +- 1,
// a j-block (32) +- 1, and a couple of larger odd sizes.
const std::size_t kSizes[] = {1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 67};

template <typename Run>
void expect_simd_scalar_identical(const char* what, Run run) {
  SimdGuard guard;
  for (std::size_t n : kSizes) {
    set_simd(true);
    const std::vector<float> vec = run(n);
    set_simd(false);
    ASSERT_FALSE(simd_active());
    const std::vector<float> scl = run(n);
    EXPECT_TRUE(bytes_equal(vec, scl)) << what << " diverges at n=" << n;
  }
}

TEST(Kernels, EnvGateForcesScalar) {
  SimdGuard guard;
  set_simd(false);
  EXPECT_FALSE(simd_active());
  EXPECT_EQ(lanes(), 1);
  set_simd(true);
  // With the gate open, lanes is 8 exactly when the host has AVX2.
  EXPECT_EQ(lanes(), simd_active() ? 8 : 1);
}

TEST(Kernels, ElementwiseParity) {
  expect_simd_scalar_identical("add", [](std::size_t n) {
    const auto x = pattern(n, 1), y = pattern(n, 2);
    std::vector<float> o(n);
    add(o.data(), x.data(), y.data(), n);
    return o;
  });
  expect_simd_scalar_identical("sub", [](std::size_t n) {
    const auto x = pattern(n, 3), y = pattern(n, 4);
    std::vector<float> o(n);
    sub(o.data(), x.data(), y.data(), n);
    return o;
  });
  expect_simd_scalar_identical("mul", [](std::size_t n) {
    const auto x = pattern(n, 5), y = pattern(n, 6);
    std::vector<float> o(n);
    mul(o.data(), x.data(), y.data(), n);
    return o;
  });
  expect_simd_scalar_identical("scale", [](std::size_t n) {
    const auto x = pattern(n, 7);
    std::vector<float> o(n);
    scale(o.data(), x.data(), 1.0f / 3.0f, n);
    return o;
  });
  expect_simd_scalar_identical("one_minus", [](std::size_t n) {
    const auto x = pattern(n, 8);
    std::vector<float> o(n);
    one_minus(o.data(), x.data(), n);
    return o;
  });
}

TEST(Kernels, ReluParityIncludingSpecials) {
  expect_simd_scalar_identical("relu", [](std::size_t n) {
    auto x = pattern(n, 9);
    // The scalar rule is x > 0 ? x : 0 — pin its NaN / -0.0 / inf behavior.
    if (n > 0) x[0] = std::numeric_limits<float>::quiet_NaN();
    if (n > 1) x[1] = -0.0f;
    if (n > 2) x[2] = std::numeric_limits<float>::infinity();
    if (n > 3) x[3] = -std::numeric_limits<float>::infinity();
    std::vector<float> o(n);
    relu(o.data(), x.data(), n);
    return o;
  });
}

TEST(Kernels, BackwardAccumulationParity) {
  expect_simd_scalar_identical("acc_add", [](std::size_t n) {
    auto dst = pattern(n, 10);
    const auto grd = pattern(n, 11);
    acc_add(dst.data(), grd.data(), n);
    return dst;
  });
  expect_simd_scalar_identical("acc_sub", [](std::size_t n) {
    auto dst = pattern(n, 12);
    const auto grd = pattern(n, 13);
    acc_sub(dst.data(), grd.data(), n);
    return dst;
  });
  expect_simd_scalar_identical("acc_mul", [](std::size_t n) {
    auto dst = pattern(n, 14);
    const auto grd = pattern(n, 15), other = pattern(n, 16);
    acc_mul(dst.data(), grd.data(), other.data(), n);
    return dst;
  });
  expect_simd_scalar_identical("acc_scale", [](std::size_t n) {
    auto dst = pattern(n, 17);
    const auto grd = pattern(n, 18);
    acc_scale(dst.data(), grd.data(), -0.7331f, n);
    return dst;
  });
}

TEST(Kernels, MatmulParityWithZeroSkip) {
  SimdGuard guard;
  // Shapes straddling the 32-wide j-block, the 8-wide lane and the scalar
  // tail, with k values that exercise the ascending-p accumulation.
  struct Shape { int m, k, n; };
  const Shape shapes[] = {{1, 1, 1},  {2, 3, 5},   {4, 8, 32},  {3, 7, 33},
                          {5, 16, 40}, {2, 5, 67}, {6, 12, 31}, {4, 9, 9}};
  for (const Shape& s : shapes) {
    auto a = pattern(static_cast<std::size_t>(s.m) * s.k, 20);
    const auto b = pattern(static_cast<std::size_t>(s.k) * s.n, 21);
    // Sprinkle exact zeros into a: the scalar kernel skips them entirely
    // (their row of b is never touched), and the vector path must match
    // that bit-for-bit even when b holds infinities at skipped rows.
    for (std::size_t i = 0; i < a.size(); i += 3) a[i] = 0.0f;
    auto run = [&](bool simd) {
      set_simd(simd);
      std::vector<float> out(static_cast<std::size_t>(s.m) * s.n, 0.0f);
      matmul_rows(a.data(), s.k, b.data(), s.n, out.data(), s.n, 0, s.m, s.k,
                  s.n);
      return out;
    };
    const auto vec = run(true), scl = run(false);
    EXPECT_TRUE(bytes_equal(vec, scl))
        << "matmul diverges at m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(Kernels, MatmulRowRangeMatchesWhole) {
  SimdGuard guard;
  set_simd(true);
  const int m = 6, k = 10, n = 35;
  const auto a = pattern(static_cast<std::size_t>(m) * k, 30);
  const auto b = pattern(static_cast<std::size_t>(k) * n, 31);
  std::vector<float> whole(static_cast<std::size_t>(m) * n, 0.0f);
  matmul_rows(a.data(), k, b.data(), n, whole.data(), n, 0, m, k, n);
  // Row-split execution (the planner's aligned-chain slices) must compose
  // to the same bytes.
  std::vector<float> split(static_cast<std::size_t>(m) * n, 0.0f);
  matmul_rows(a.data(), k, b.data(), n, split.data(), n, 0, 2, k, n);
  matmul_rows(a.data(), k, b.data(), n, split.data(), n, 2, 5, k, n);
  matmul_rows(a.data(), k, b.data(), n, split.data(), n, 5, m, k, n);
  EXPECT_TRUE(bytes_equal(whole, split));
}

}  // namespace
}  // namespace deepseq::nn::kernels
