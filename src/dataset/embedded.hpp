#pragma once

#include "netlist/circuit.hpp"

namespace deepseq {

/// Embedded real reference netlists used by tests and examples.

/// ISCAS'89 s27: the canonical 4-input, 3-FF, 1-output sequential
/// benchmark. Small enough for exhaustive verification of the simulator and
/// probability estimators.
Circuit iscas89_s27();

/// A 4-bit synchronous counter with enable, as a generic-gate netlist
/// (exercise for AIG decomposition + sequential behaviour with known
/// closed-form toggle rates: bit k toggles at rate en/2^k).
Circuit counter4();

}  // namespace deepseq
