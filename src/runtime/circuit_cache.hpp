#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "netlist/circuit.hpp"
#include "netlist/structural_hash.hpp"
#include "nn/tensor.hpp"
#include "obs/metrics.hpp"
#include "sim/workload.hpp"

namespace deepseq::runtime {

/// Hit/miss/eviction counters of one cache layer. Snapshot via
/// CircuitCache::stats(); counters are monotonic over the cache lifetime.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Sharded LRU map from a hashable key to shared_ptr<const Value>. Each
/// shard is an independent mutex + LRU list + index, so concurrent lookups
/// of different circuits rarely contend. Key must provide hash64() and
/// operator== (the full key is stored and compared — the 64-bit hash only
/// picks the shard/bucket, it is not trusted for identity).
///
/// get_or_build() runs the builder OUTSIDE the shard lock: two threads
/// missing the same key concurrently may both build (last insert wins,
/// both callers get a usable value). The serving layer coalesces identical
/// requests into one batch before they reach the cache, which makes that
/// duplication rare in practice and keeps the lock never held across
/// expensive work.
template <typename Key, typename Value>
class ShardedLruCache {
 public:
  ShardedLruCache(std::size_t capacity, std::size_t num_shards = 8)
      : shards_(std::max<std::size_t>(1, num_shards)) {
    const std::size_t per_shard =
        std::max<std::size_t>(1, capacity / shards_.size());
    for (auto& s : shards_) s.capacity = per_shard;
  }

  /// Mirror this cache's hit/miss/eviction counts into obs counters (the
  /// process-wide metrics export); pass nullptrs to detach. The internal
  /// counters keep running either way.
  void bind_obs(obs::Counter* hits, obs::Counter* misses,
                obs::Counter* evictions) {
    obs_hits_ = hits;
    obs_misses_ = misses;
    obs_evictions_ = evictions;
  }

  std::shared_ptr<const Value> get(const Key& key) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto range = s.index.equal_range(key.hash64());
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second->first == key) {
        s.lru.splice(s.lru.begin(), s.lru, it->second);  // move to front
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (obs_hits_ != nullptr) obs_hits_->inc();
        return it->second->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (obs_misses_ != nullptr) obs_misses_->inc();
    return nullptr;
  }

  void put(const Key& key, std::shared_ptr<const Value> value) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto range = s.index.equal_range(key.hash64());
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second->first == key) {
        it->second->second = std::move(value);
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        return;
      }
    }
    s.lru.emplace_front(key, std::move(value));
    s.index.emplace(key.hash64(), s.lru.begin());
    if (s.lru.size() > s.capacity) evict_lru(s);
  }

  /// get() or build-and-put(); always returns a non-null value (assuming
  /// the builder returns one).
  template <typename Builder>
  std::shared_ptr<const Value> get_or_build(const Key& key,
                                            Builder&& builder) {
    if (auto v = get(key)) return v;
    std::shared_ptr<const Value> built = builder();
    put(key, built);
    return built;
  }

  CacheCounters counters() const {
    CacheCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    return c;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.lru.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::size_t capacity = 1;
    // Front = most recently used. Entries own the full key for exact
    // comparison; the multimap bucket key is the 64-bit hash.
    std::list<std::pair<Key, std::shared_ptr<const Value>>> lru;
    std::unordered_multimap<
        std::uint64_t,
        typename std::list<std::pair<Key, std::shared_ptr<const Value>>>::iterator>
        index;
  };

  Shard& shard_for(const Key& key) {
    return shards_[(key.hash64() >> 56) % shards_.size()];
  }

  void evict_lru(Shard& s) {
    const auto victim = std::prev(s.lru.end());
    auto range = s.index.equal_range(victim->first.hash64());
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == victim) {
        s.index.erase(it);
        break;
      }
    }
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (obs_evictions_ != nullptr) obs_evictions_->inc();
  }

  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, evictions_{0};
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
};

// ---- circuit-serving cache layers -----------------------------------------

/// Key of the structure layer: the circuit's content hash PLUS its
/// creation-order (exact) hash PLUS the backend fingerprint the state was
/// prepared by. The exact component is load-bearing for correctness:
/// cached backend states and embedding matrices are indexed by node id, so
/// an isomorphic circuit with permuted ids must NOT share an entry — its
/// caller would read other nodes' rows. Byte-identical netlists (same file
/// parsed again — the hot serving case) produce identical creation orders
/// and still share. The backend fingerprint keeps differently-configured
/// backends' states (levelized schedules vs ancestor sets, different
/// hyper-parameters) apart.
struct StructureKey {
  StructuralHash hash;
  std::uint64_t exact = 0;
  std::uint64_t backend = 0;  // api::BackendInfo::fingerprint

  std::uint64_t hash64() const { return hash_mix(hash.digest, backend); }
  bool operator==(const StructureKey& o) const {
    return hash == o.hash && exact == o.exact && backend == o.backend;
  }
};

/// Key of the embedding layer: structure + backend identity + workload +
/// init seed — everything the deterministic forward pass depends on.
struct EmbeddingKey {
  StructuralHash structure;
  std::uint64_t exact = 0;  // see StructureKey::exact
  std::uint64_t backend_fingerprint = 0;
  std::uint64_t workload_fingerprint = 0;
  std::uint64_t init_seed = 0;

  std::uint64_t hash64() const;
  bool operator==(const EmbeddingKey& o) const;
};

/// Bitwise-exact fingerprint of a workload (PI probabilities + pattern
/// seed) for embedding-cache keys.
std::uint64_t workload_fingerprint(const Workload& w);

/// Configuration of the three cache layers.
struct CircuitCacheConfig {
  std::size_t structure_capacity = 128;
  std::size_t embedding_capacity = 1024;
  std::size_t regression_capacity = 1024;
  std::size_t shards = 8;
};

/// The serving cache: per-backend structure states (prepare once per
/// netlist), final embeddings (skip the forward pass entirely on repeat
/// requests), and regression-head outputs keyed by the same EmbeddingKey
/// (warm multi-task logic/transition-probability/power traffic skips the
/// two-head MLP forward as well). All methods are thread-safe.
class CircuitCache {
 public:
  explicit CircuitCache(const CircuitCacheConfig& config = {});

  std::shared_ptr<const api::BackendState> get_structure(
      const StructureKey& k) {
    return structures_.get(k);
  }
  template <typename Builder>
  std::shared_ptr<const api::BackendState> get_or_build_structure(
      const StructureKey& k, Builder&& b) {
    return structures_.get_or_build(k, std::forward<Builder>(b));
  }

  std::shared_ptr<const nn::Tensor> get_embedding(const EmbeddingKey& k) {
    return embeddings_.get(k);
  }
  void put_embedding(const EmbeddingKey& k,
                     std::shared_ptr<const nn::Tensor> v) {
    embeddings_.put(k, std::move(v));
  }

  std::shared_ptr<const api::Regression> get_regression(const EmbeddingKey& k) {
    return regressions_.get(k);
  }
  template <typename Builder>
  std::shared_ptr<const api::Regression> get_or_build_regression(
      const EmbeddingKey& k, Builder&& b) {
    return regressions_.get_or_build(k, std::forward<Builder>(b));
  }

  struct Stats {
    CacheCounters structures;
    CacheCounters embeddings;
    CacheCounters regressions;
    std::size_t structure_entries = 0;
    std::size_t embedding_entries = 0;
    std::size_t regression_entries = 0;
  };
  Stats stats() const;

 private:
  ShardedLruCache<StructureKey, api::BackendState> structures_;
  ShardedLruCache<EmbeddingKey, nn::Tensor> embeddings_;
  ShardedLruCache<EmbeddingKey, api::Regression> regressions_;
};

}  // namespace deepseq::runtime
