#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <unordered_map>

#include "common/error.hpp"

namespace deepseq::nn {

namespace {
constexpr std::uint32_t kMagic = 0x44535130;  // "DSQ0"
}

void save_params(const std::string& path, const NamedParams& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("save_params: cannot open " + path);
  const std::uint32_t magic = kMagic;
  const auto count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, p] : params) {
    const auto len = static_cast<std::uint32_t>(name.size());
    const std::uint32_t rows = static_cast<std::uint32_t>(p->value.rows());
    const std::uint32_t cols = static_cast<std::uint32_t>(p->value.cols());
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(name.data(), len);
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!out) throw Error("save_params: write failed for " + path);
}

void load_params(const std::string& path, const NamedParams& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("load_params: cannot open " + path);
  std::uint32_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) throw Error("load_params: bad file format");

  std::unordered_map<std::string, Tensor> loaded;
  for (std::uint32_t k = 0; k < count; ++k) {
    std::uint32_t len = 0, rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in || len > 4096) throw Error("load_params: corrupt entry");
    std::string name(len, '\0');
    in.read(name.data(), len);
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    Tensor t(static_cast<int>(rows), static_cast<int>(cols));
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    if (!in) throw Error("load_params: truncated file");
    loaded.emplace(std::move(name), std::move(t));
  }

  for (const auto& [name, p] : params) {
    auto it = loaded.find(name);
    if (it == loaded.end())
      throw Error("load_params: parameter '" + name + "' missing from " + path);
    if (!it->second.same_shape(p->value))
      throw Error("load_params: shape mismatch for '" + name + "'");
    p->value = it->second;
  }
}

}  // namespace deepseq::nn
