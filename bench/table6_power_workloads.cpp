// Regenerates Table VI: power estimation on ac97_ctrl under five different
// workloads (W0-W4), demonstrating that one fine-tuned model generalizes
// across workloads of the same circuit. W4 is a high-activity workload like
// the paper's (its GT power is ~2x the others).

#include <cstdio>

#include "bench_util.hpp"
#include "netlist/aig.hpp"
#include "power/pipeline.hpp"

int main() {
  using namespace deepseq;
  using namespace deepseq::bench;

  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("TABLE VI", "power estimation on ac97_ctrl under 5 workloads", cfg);

  const DeepSeqModel deepseq_model = pretrained_deepseq(cfg);
  const GranniteModel grannite_model = pretrained_grannite(cfg);

  PowerPipelineOptions popt;
  popt.gt_sim_cycles = cfg.gt_cycles;
  popt.finetune_workloads = cfg.ft_workloads;
  popt.finetune_epochs = cfg.ft_epochs;
  popt.finetune_sim_cycles = cfg.ft_cycles;
  popt.finetune_lr = cfg.ft_lr;
  // The paper's plain Eq. 3 objective at full scale; class-balanced TR
  // loss at reduced budgets (see PowerPipelineOptions::balanced_finetune).
  popt.balanced_finetune = !cfg.full;

  const TestDesign design =
      build_test_design("ac97_ctrl", cfg.design_scale, cfg.eval_seed);
  const FtBudget budget = scaled_ft_budget(
      cfg, decompose_to_aig(design.netlist).aig.num_nodes());
  popt.finetune_workloads = budget.workloads;
  popt.finetune_epochs = budget.epochs;
  PowerPipeline pipeline(deepseq_model, grannite_model, popt);
  Rng rng(cfg.eval_seed ^ 0x6666u);
  std::vector<Workload> workloads;
  for (int k = 0; k < 4; ++k)
    workloads.push_back(low_activity_workload(design.netlist, rng,
                                              cfg.workload_active_fraction));
  // W4: high-activity workload (paper's W4 drew ~2x the power of W0-W3).
  workloads.push_back(random_workload(design.netlist, rng));

  struct PaperRow {
    double gt, prob_err, gran_err, ds_err;
  };
  const PaperRow paper[] = {{3.353, 0.2622, 0.1760, 0.0274},
                            {3.349, 0.0797, 0.0693, 0.0388},
                            {2.758, 0.1773, 0.0247, 0.0221},
                            {3.414, 0.1315, 0.0662, 0.0269},
                            {6.696, 0.1249, 0.0349, 0.0133}};

  const auto rows = pipeline.run_workloads(design, workloads);

  std::printf("\n%-4s | %9s | %9s %8s | %9s %8s | %9s %8s || %8s %8s %8s\n",
              "WL", "GT (mW)", "Prob(mW)", "Err", "Gran(mW)", "Err", "DeepSeq",
              "Err", "p:Prob", "p:Gran", "p:DS");
  std::printf("%.*s\n", 112, std::string(112, '-').c_str());
  double sum_prob = 0, sum_gran = 0, sum_ds = 0;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const PowerComparison& cmp = rows[k];
    std::printf("%-4s | %9.4f | %9.4f %8s | %9.4f %8s | %9.4f %8s || %8s %8s %8s\n",
                cmp.workload_id.c_str(), cmp.gt_mw, cmp.probabilistic_mw,
                pct(cmp.probabilistic_error).c_str(), cmp.grannite_mw,
                pct(cmp.grannite_error).c_str(), cmp.deepseq_mw,
                pct(cmp.deepseq_error).c_str(), pct(paper[k].prob_err).c_str(),
                pct(paper[k].gran_err).c_str(), pct(paper[k].ds_err).c_str());
    sum_prob += cmp.probabilistic_error;
    sum_gran += cmp.grannite_error;
    sum_ds += cmp.deepseq_error;
  }
  const double n = static_cast<double>(rows.size());
  std::printf("%-4s | %9s | %9s %8s | %9s %8s | %9s %8s || %8s %8s %8s\n",
              "Avg.", "", "", pct(sum_prob / n).c_str(), "",
              pct(sum_gran / n).c_str(), "", pct(sum_ds / n).c_str(), "15.51%",
              "7.42%", "2.57%");
  return 0;
}
