#include "ingest/lexer.hpp"

#include <cctype>

#include "common/error.hpp"

namespace deepseq::ingest {

// The grammar below is a char-at-a-time restatement of the legacy
// tokenize_verilog loop; every branch mirrors one of its cases so the two
// produce identical streams on identical bytes. One deliberate
// bug-compat detail: the legacy block-comment scan never examines the
// final character of the text (its loop condition is i + 1 < size), so a
// newline in last position of an unterminated comment is not counted in
// the error's line number — block_nl_last_ reproduces that.

void StreamLexer::feed(std::string_view chunk) {
  for (const char ch : chunk) {
    process(ch);
    ++offset_;
  }
  // Only the partial token crosses the feed boundary; record the carry.
  if (tok_.size() > peak_carry_) peak_carry_ = tok_.size();
}

void StreamLexer::process(char ch) {
  for (;;) {
    switch (state_) {
      case State::kDefault:
        if (ch == '\n') {
          ++line_;
          return;
        }
        if (std::isspace(static_cast<unsigned char>(ch))) return;
        if (ch == '/') {
          state_ = State::kSlash;
          slash_line_ = line_;
          slash_offset_ = offset_;
          return;
        }
        if (verilog_ident_start(ch)) {
          state_ = State::kIdent;
          tok_.assign(1, ch);
          tok_line_ = line_;
          tok_offset_ = offset_;
          return;
        }
        if (ch >= '0' && ch <= '9') {
          state_ = State::kNumber;
          tok_.assign(1, ch);
          tok_line_ = line_;
          tok_offset_ = offset_;
          return;
        }
        if (ch == '\\')
          throw ParseError("escaped identifiers are not supported", line_);
        if (ch == '[')
          throw ParseError("vector/bus ports are not supported", line_);
        emit(std::string(1, ch), line_, offset_);
        return;
      case State::kSlash:
        if (ch == '/') {
          state_ = State::kLineComment;
          return;
        }
        if (ch == '*') {
          state_ = State::kBlock;
          block_nl_last_ = false;
          return;
        }
        state_ = State::kDefault;
        emit("/", slash_line_, slash_offset_);
        continue;  // reprocess ch as the start of something new
      case State::kLineComment:
        if (ch == '\n') {
          ++line_;
          state_ = State::kDefault;
        }
        return;
      case State::kBlock:
        if (ch == '*') {
          state_ = State::kBlockStar;
          block_nl_last_ = false;
        } else if (ch == '\n') {
          ++line_;
          block_nl_last_ = true;
        } else {
          block_nl_last_ = false;
        }
        return;
      case State::kBlockStar:
        if (ch == '/') {
          state_ = State::kDefault;
        } else if (ch == '*') {
          block_nl_last_ = false;
        } else if (ch == '\n') {
          ++line_;
          block_nl_last_ = true;
          state_ = State::kBlock;
        } else {
          block_nl_last_ = false;
          state_ = State::kBlock;
        }
        return;
      case State::kIdent:
        if (verilog_ident_char(ch)) {
          tok_.push_back(ch);
          return;
        }
        emit_pending();
        continue;  // reprocess ch
      case State::kNumber:
        if (verilog_ident_char(ch) || ch == '\'') {
          tok_.push_back(ch);
          return;
        }
        emit_pending();
        continue;  // reprocess ch
    }
  }
}

void StreamLexer::finish() {
  switch (state_) {
    case State::kSlash:
      emit("/", slash_line_, slash_offset_);
      break;
    case State::kIdent:
    case State::kNumber:
      emit_pending();
      break;
    case State::kBlock:
    case State::kBlockStar:
      throw ParseError("unterminated comment",
                       line_ - (block_nl_last_ ? 1 : 0));
    case State::kDefault:
    case State::kLineComment:
      break;
  }
  state_ = State::kDefault;
}

void StreamLexer::emit(std::string text, int line, std::uint64_t offset) {
  if (text.size() > max_token_) max_token_ = text.size();
  tokens_.push_back({std::move(text), line});
  offsets_.push_back(offset);
}

void StreamLexer::emit_pending() {
  state_ = State::kDefault;
  emit(std::move(tok_), tok_line_, tok_offset_);
  tok_.clear();
}

}  // namespace deepseq::ingest
