#pragma once

#include <vector>

#include "netlist/circuit.hpp"

namespace deepseq {

/// SCOAP testability measures (Goldstein's classic controllability /
/// observability analysis) for sequential netlists — the substrate of the
/// test-point-insertion task that motivates circuit representation
/// learning downstream (DeepTPI [10], §II-B of the paper).
///
/// * `cc0[v]` / `cc1[v]` — how many signal assignments are needed to drive
///   node v to 0 / 1 (PIs cost 1; every gate adds 1 to its inputs' cost).
/// * `co[v]` — how many assignments are needed to propagate a change at v
///   to some primary output (POs cost 0).
///
/// Flip-flops add one time frame: controlling a FF costs controlling its D
/// input plus one, observing a FF's D input costs observing the FF plus
/// one. Feedback cycles are resolved by monotone fixpoint relaxation from
/// "uncontrollable/unobservable" (kScoapInf), which converges because
/// every relaxation only lowers a value.
constexpr double kScoapInf = 1e18;

struct ScoapMeasures {
  std::vector<double> cc0, cc1, co;
  int controllability_iterations = 0;
  int observability_iterations = 0;

  /// Goldstein's testability of the stuck-at-`stuck` fault at v:
  /// cost of driving v to the opposite value plus observing it.
  double fault_effort(NodeId v, bool stuck_at) const {
    const double drive = stuck_at ? cc0[v] : cc1[v];
    return drive >= kScoapInf || co[v] >= kScoapInf ? kScoapInf
                                                    : drive + co[v];
  }
};

struct ScoapOptions {
  int max_iterations = 100;  // fixpoint rounds for sequential feedback
};

ScoapMeasures compute_scoap(const Circuit& c, const ScoapOptions& opt = {});

}  // namespace deepseq
