#pragma once

#include <iosfwd>
#include <string>

#include "nn/modules.hpp"

namespace deepseq::nn {

/// One raw on-disk tensor record, the low-level unit of every weight file:
/// u32 name length, name bytes, u32 rows, u32 cols, row-major float payload.
/// save_params writes a header plus one record per parameter; the versioned
/// artifact container (src/artifact) embeds the same records per section.
struct TensorRecord {
  std::string name;
  Tensor value;
};

void write_tensor_record(std::ostream& out, const std::string& name,
                         const Tensor& value);

/// Read one record; throws Error prefixed with `context` on truncation or a
/// corrupt length/shape field.
TensorRecord read_tensor_record(std::istream& in, const std::string& context);

/// Save named parameters to a simple binary format (magic, count, then one
/// TensorRecord per entry). Entries are written in sorted-name order
/// regardless of the collection order `params` arrives in, so identical
/// weights always produce byte-identical files (and stable artifact content
/// hashes downstream). Used to persist pre-trained DeepSeq weights between
/// the pre-training and fine-tuning stages.
void save_params(const std::string& path, const NamedParams& params);

/// Load parameters saved with save_params into matching Vars (matched by
/// name; shapes must agree). Throws Error on missing names or shape
/// mismatch; entries present in the file but absent from `params` are
/// ignored, so a fine-tuning model with an extra head can load a
/// pre-trained backbone.
void load_params(const std::string& path, const NamedParams& params);

}  // namespace deepseq::nn
