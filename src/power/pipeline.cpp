#include "power/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.hpp"
#include "netlist/aig.hpp"
#include "netlist/bench_io.hpp"
#include "prob/switching.hpp"

namespace deepseq {

Workload map_workload_to_aig(const Circuit& generic,
                             const std::vector<NodeId>& node_map,
                             const Circuit& aig, const Workload& w) {
  if (w.pi_prob.size() != generic.pis().size())
    throw Error("map_workload_to_aig: workload PI count mismatch");
  std::unordered_map<NodeId, double> prob_of_aig_pi;
  for (std::size_t k = 0; k < generic.pis().size(); ++k)
    prob_of_aig_pi.emplace(node_map[generic.pis()[k]], w.pi_prob[k]);

  Workload out;
  out.pattern_seed = w.pattern_seed;
  out.pi_prob.reserve(aig.pis().size());
  for (NodeId pi : aig.pis()) {
    const auto it = prob_of_aig_pi.find(pi);
    if (it == prob_of_aig_pi.end())
      throw Error("map_workload_to_aig: AIG PI without a generic source");
    out.pi_prob.push_back(it->second);
  }
  return out;
}

namespace {

/// SAIF document over the generic netlist's node names from per-node
/// logic-1 probabilities and toggle rates.
SaifDocument make_saif(const Circuit& netlist, const std::vector<double>& logic1,
                       const std::vector<double>& rate, long long duration,
                       const std::string& design) {
  SaifDocument doc;
  doc.design = design;
  doc.duration = duration;
  const auto names = unique_node_names(netlist);
  for (NodeId v = 0; v < netlist.num_nodes(); ++v)
    doc.add_net(names[v], logic1[v], rate[v]);
  return doc;
}

double power_via_saif(const Circuit& netlist, const SaifDocument& doc,
                      const std::string& saif_dir, const std::string& label) {
  if (!saif_dir.empty())
    write_saif_file(doc, saif_dir + "/" + doc.design + "_" + label + ".saif");
  return analyze_power(netlist, doc).total_mw();
}

}  // namespace

PowerReport power_from_activity(const Circuit& netlist,
                                const std::vector<double>& logic1,
                                const std::vector<double>& toggle_rate,
                                long long duration,
                                const std::string& saif_path) {
  if (logic1.size() != netlist.num_nodes() ||
      toggle_rate.size() != netlist.num_nodes())
    throw Error("power_from_activity: activity vectors must have one entry "
                "per node");
  const SaifDocument doc = make_saif(netlist, logic1, toggle_rate, duration,
                                     netlist.name().empty() ? "design"
                                                            : netlist.name());
  if (!saif_path.empty()) write_saif_file(doc, saif_path);
  return analyze_power(netlist, doc);
}

const char* finetune_dist_name(FinetuneDist d) {
  switch (d) {
    case FinetuneDist::kUniform: return "uniform";
    case FinetuneDist::kLowActivity: return "low-activity";
    case FinetuneDist::kMixed: return "mixed";
  }
  return "?";
}

namespace {

double rel_error(double est, double gt) {
  return gt != 0.0 ? std::fabs(est - gt) / gt : 0.0;
}

}  // namespace

PowerPipeline::PowerPipeline(const DeepSeqModel& pretrained_deepseq,
                             const GranniteModel& pretrained_grannite,
                             const PowerPipelineOptions& options)
    : pretrained_deepseq_(pretrained_deepseq),
      pretrained_grannite_(pretrained_grannite),
      options_(options) {}

PowerComparison PowerPipeline::run(const TestDesign& design,
                                   const Workload& workload) {
  return run_workloads(design, {workload}).front();
}

std::vector<PowerComparison> PowerPipeline::run_workloads(
    const TestDesign& design, const std::vector<Workload>& workloads) {
  const Circuit& netlist = design.netlist;
  Rng rng(options_.seed ^ std::hash<std::string>{}(design.name));

  // Decompose to AIG without optimization (paper §V-A2); probabilities are
  // read off the representative fanout node of each gate's combination.
  const AigConversion conv = decompose_to_aig(netlist);
  auto aig = std::make_shared<const Circuit>(conv.aig);

  // ---- fine-tuning stage (once per design) --------------------------------
  DeepSeqModel deepseq(pretrained_deepseq_.config());
  deepseq.copy_params_from(pretrained_deepseq_);
  GranniteModel grannite(pretrained_grannite_.config());
  grannite.copy_params_from(pretrained_grannite_);

  // Fine-tuning workloads (paper §V-A1: 1000 workloads per design drawn
  // from the §III-B pipeline; bench/ablation_finetune studies the
  // distribution choice at reduced budgets).
  auto draw_ft_workload = [&](int k) {
    switch (options_.finetune_dist) {
      case FinetuneDist::kUniform:
        return random_workload(netlist, rng);
      case FinetuneDist::kLowActivity:
        return low_activity_workload(netlist, rng,
                                     options_.finetune_active_fraction);
      case FinetuneDist::kMixed:
      default:
        return k % 2 == 0 ? random_workload(netlist, rng)
                          : low_activity_workload(
                                netlist, rng,
                                options_.finetune_active_fraction);
    }
  };
  std::vector<TrainSample> ft_samples;
  ft_samples.reserve(static_cast<std::size_t>(options_.finetune_workloads));
  for (int k = 0; k < options_.finetune_workloads; ++k) {
    Workload w_gen = draw_ft_workload(k);
    Workload w_aig = map_workload_to_aig(netlist, conv.node_map, *aig, w_gen);
    ActivityOptions sim_opt;
    sim_opt.num_cycles = options_.finetune_sim_cycles;
    const NodeActivity act = collect_activity(*aig, w_aig, sim_opt);
    ft_samples.push_back(make_sample_from_activity(
        design.name + "_ft" + std::to_string(k), aig, std::move(w_aig), act,
        options_.init_seed + static_cast<std::uint64_t>(k)));
  }

  {
    TrainOptions ft;
    ft.epochs = options_.finetune_epochs;
    ft.lr = options_.finetune_lr;
    ft.batch_size = options_.finetune_batch;
    ft.balance_tr = options_.balanced_finetune;
    Trainer trainer(deepseq, ft);
    trainer.fit(ft_samples);
  }
  {
    std::vector<GranniteSample> gs;
    gs.reserve(ft_samples.size());
    for (const auto& s : ft_samples) gs.push_back(make_grannite_sample(s));
    grannite.fit(gs, options_.finetune_epochs, options_.finetune_lr,
                 rng.next_u64(), options_.balanced_finetune);
  }

  // ---- evaluation per workload --------------------------------------------
  std::vector<PowerComparison> out;
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const Workload& w_gen = workloads[wi];
    const Workload w_aig = map_workload_to_aig(netlist, conv.node_map, *aig, w_gen);

    PowerComparison cmp;
    cmp.design = design.name;
    cmp.workload_id = "W" + std::to_string(wi);

    // Ground truth: logic simulation of the generic netlist (Fig. 3 top).
    ActivityOptions gt_opt;
    gt_opt.num_cycles = options_.gt_sim_cycles;
    const NodeActivity gt_act = collect_activity(netlist, w_gen, gt_opt);
    cmp.static_fraction = gt_act.static_fraction();
    std::vector<double> gt_rate(netlist.num_nodes());
    for (NodeId v = 0; v < netlist.num_nodes(); ++v)
      gt_rate[v] = gt_act.toggle_rate(v);
    const SaifDocument gt_saif = make_saif(netlist, gt_act.logic1, gt_rate,
                                           options_.gt_sim_cycles, design.name);
    cmp.gt_mw = power_via_saif(netlist, gt_saif, options_.saif_dir,
                               cmp.workload_id + "_gt");

    // Probabilistic baseline [27]: non-simulative estimate on the netlist.
    const SwitchingEstimate sw = estimate_switching(netlist, w_gen);
    std::vector<double> sw_rate(netlist.num_nodes());
    for (NodeId v = 0; v < netlist.num_nodes(); ++v)
      sw_rate[v] = sw.tr01[v] + sw.tr10[v];
    cmp.probabilistic_mw = power_via_saif(
        netlist, make_saif(netlist, sw.logic1, sw_rate, options_.gt_sim_cycles,
                           design.name),
        options_.saif_dir, cmp.workload_id + "_probabilistic");
    cmp.probabilistic_error = rel_error(cmp.probabilistic_mw, cmp.gt_mw);

    // Both learned methods predict on the AIG under the test workload.
    ActivityOptions aig_opt;
    aig_opt.num_cycles = options_.gt_sim_cycles;
    const NodeActivity aig_act = collect_activity(*aig, w_aig, aig_opt);
    const CircuitGraph aig_graph = build_circuit_graph(*aig);

    const int ensemble = std::max(1, options_.inference_init_seeds);

    // Grannite: PI/FF activity comes from simulation, logic is inferred.
    // Predictions are averaged over the h0 ensemble (see options).
    {
      TrainSample probe = make_sample_from_activity("probe", aig, w_aig,
                                                    aig_act, options_.init_seed);
      const GranniteSample gsample = make_grannite_sample(probe);
      std::vector<double> aig_rates(aig->num_nodes(), 0.0);
      for (int e = 0; e < ensemble; ++e) {
        const std::vector<double> one = grannite.toggle_rates(
            probe.graph, gsample.source_feats,
            options_.init_seed + static_cast<std::uint64_t>(e));
        for (std::size_t v = 0; v < aig_rates.size(); ++v)
          aig_rates[v] += one[v] / ensemble;
      }
      std::vector<double> rate(netlist.num_nodes()), logic1(netlist.num_nodes());
      for (NodeId v = 0; v < netlist.num_nodes(); ++v) {
        rate[v] = aig_rates[conv.node_map[v]];
        logic1[v] = aig_act.logic1[conv.node_map[v]];
      }
      cmp.grannite_mw = power_via_saif(
          netlist, make_saif(netlist, logic1, rate, options_.gt_sim_cycles,
                             design.name),
          options_.saif_dir, cmp.workload_id + "_grannite");
      cmp.grannite_error = rel_error(cmp.grannite_mw, cmp.gt_mw);
    }

    // DeepSeq: the fine-tuned model predicts every component's activity
    // from the workload alone — no simulation input. Averaged over the h0
    // ensemble.
    {
      std::vector<double> aig_rate(aig->num_nodes(), 0.0);
      std::vector<double> aig_lg(aig->num_nodes(), 0.0);
      for (int e = 0; e < ensemble; ++e) {
        nn::Graph g(false);
        const auto pred = deepseq.forward(
            g, aig_graph, w_aig,
            options_.init_seed + static_cast<std::uint64_t>(e));
        for (std::size_t v = 0; v < aig_rate.size(); ++v) {
          aig_rate[v] += (pred.tr->value.at(static_cast<int>(v), 0) +
                          pred.tr->value.at(static_cast<int>(v), 1)) /
                         ensemble;
          aig_lg[v] += pred.lg->value.at(static_cast<int>(v), 0) / ensemble;
        }
      }
      std::vector<double> rate(netlist.num_nodes()), logic1(netlist.num_nodes());
      for (NodeId v = 0; v < netlist.num_nodes(); ++v) {
        const NodeId rep = conv.node_map[v];
        rate[v] = aig_rate[rep];
        logic1[v] = aig_lg[rep];
      }
      cmp.deepseq_mw = power_via_saif(
          netlist, make_saif(netlist, logic1, rate, options_.gt_sim_cycles,
                             design.name),
          options_.saif_dir, cmp.workload_id + "_deepseq");
      cmp.deepseq_error = rel_error(cmp.deepseq_mw, cmp.gt_mw);
    }

    out.push_back(cmp);
  }
  return out;
}

}  // namespace deepseq
