#pragma once

#include <string>
#include <vector>

#include "dataset/test_designs.hpp"
#include "reliability/reliability_model.hpp"

namespace deepseq {

/// Table VII orchestration: fine-tune DeepSeq for reliability on the
/// pre-training corpus (paper §V-B1), then compare — per large test design —
/// Monte-Carlo ground truth, the analytic baseline [32] and the fine-tuned
/// model.
struct ReliabilityPipelineOptions {
  FaultSimOptions fault;  // paper: 1000 sequences x 100 cycles, eps = 0.05%
  int finetune_epochs = 4;
  float finetune_lr = 1e-3f;
  double workload_active_fraction = 0.3;
  std::uint64_t seed = 727;
};

struct ReliabilityComparison {
  std::string design;
  double gt = 1.0;
  double probabilistic = 1.0;
  double probabilistic_error = 0.0;
  double deepseq = 1.0;
  double deepseq_error = 0.0;
};

class ReliabilityPipeline {
 public:
  ReliabilityPipeline(const DeepSeqModel& pretrained,
                      const ReliabilityPipelineOptions& options);

  /// Fine-tune on the (Table I) pre-training samples: each is labeled by
  /// fault simulation under its own workload.
  void finetune(const std::vector<TrainSample>& dataset);

  ReliabilityComparison run(const TestDesign& design, const Workload& workload);

 private:
  ReliabilityModel model_;
  ReliabilityPipelineOptions options_;
  bool finetuned_ = false;
};

}  // namespace deepseq
