#include "netlist/aig.hpp"

#include <unordered_map>

#include "common/error.hpp"
#include "netlist/topology.hpp"

namespace deepseq {

namespace {

/// Helper caching one inverter per source node so decomposition does not
/// multiply structurally identical NOTs (the combination itself is still
/// unoptimized — representatives keep the original gate's function).
class AigBuilder {
 public:
  explicit AigBuilder(Circuit& c) : c_(c) {}

  NodeId land(NodeId a, NodeId b) { return c_.add_and(a, b); }
  NodeId lnot(NodeId a) {
    auto [it, inserted] = not_cache_.emplace(a, kNullNode);
    if (inserted) it->second = c_.add_not(a);
    return it->second;
  }
  NodeId lor(NodeId a, NodeId b) { return lnot(land(lnot(a), lnot(b))); }

 private:
  Circuit& c_;
  std::unordered_map<NodeId, NodeId> not_cache_;
};

}  // namespace

AigConversion decompose_to_aig(const Circuit& g) {
  AigConversion out;
  out.aig.set_name(g.name());
  out.node_map.assign(g.num_nodes(), kNullNode);
  Circuit& a = out.aig;
  AigBuilder b(a);

  // FFs first (they are topological sources; D inputs patched at the end).
  for (NodeId v : g.ffs()) out.node_map[v] = a.add_ff(kNullNode, g.node_name(v));

  for (NodeId v : comb_topo_order(g)) {
    if (out.node_map[v] != kNullNode) continue;  // FF, already created
    auto fi = [&](int slot) {
      const NodeId m = out.node_map[g.fanin(v, slot)];
      if (m == kNullNode) throw CircuitError("decompose: fanin not yet mapped");
      return m;
    };
    switch (g.type(v)) {
      case GateType::kPi:
        out.node_map[v] = a.add_pi(g.node_name(v));
        break;
      case GateType::kConst0:
        out.node_map[v] = a.add_const0(g.node_name(v));
        break;
      case GateType::kAnd:
        out.node_map[v] = a.add_and(fi(0), fi(1), g.node_name(v));
        break;
      case GateType::kNot:
        out.node_map[v] = a.add_not(fi(0), g.node_name(v));
        break;
      case GateType::kBuf:
        // BUF(a) = NOT(NOT(a)); the outer NOT is the representative.
        out.node_map[v] = a.add_not(b.lnot(fi(0)), g.node_name(v));
        break;
      case GateType::kNand:
        out.node_map[v] = a.add_not(b.land(fi(0), fi(1)), g.node_name(v));
        break;
      case GateType::kOr:
        out.node_map[v] =
            a.add_not(b.land(b.lnot(fi(0)), b.lnot(fi(1))), g.node_name(v));
        break;
      case GateType::kNor:
        out.node_map[v] = a.add_and(b.lnot(fi(0)), b.lnot(fi(1)), g.node_name(v));
        break;
      case GateType::kXor: {
        // XOR(a,b) = OR(AND(a,~b), AND(~a,b)).
        const NodeId t1 = b.land(fi(0), b.lnot(fi(1)));
        const NodeId t2 = b.land(b.lnot(fi(0)), fi(1));
        out.node_map[v] = a.add_not(b.land(b.lnot(t1), b.lnot(t2)), g.node_name(v));
        break;
      }
      case GateType::kXnor: {
        const NodeId t1 = b.land(fi(0), b.lnot(fi(1)));
        const NodeId t2 = b.land(b.lnot(fi(0)), fi(1));
        out.node_map[v] = a.add_and(b.lnot(t1), b.lnot(t2), g.node_name(v));
        break;
      }
      case GateType::kMux: {
        // MUX(s,a,b) = OR(AND(s,a), AND(~s,b)).
        const NodeId t1 = b.land(fi(0), fi(1));
        const NodeId t2 = b.land(b.lnot(fi(0)), fi(2));
        out.node_map[v] = a.add_not(b.land(b.lnot(t1), b.lnot(t2)), g.node_name(v));
        break;
      }
      case GateType::kFf:
        break;  // unreachable: handled above
    }
  }

  // Patch FF D inputs and primary outputs.
  for (NodeId v : g.ffs()) a.set_fanin(out.node_map[v], 0, out.node_map[g.fanin(v, 0)]);
  for (std::size_t k = 0; k < g.pos().size(); ++k)
    a.add_po(out.node_map[g.pos()[k]], g.po_name(k));

  a.validate();
  return out;
}

namespace {

struct AndKey {
  NodeId a, b;
  bool operator==(const AndKey& o) const { return a == o.a && b == o.b; }
};
struct AndKeyHash {
  std::size_t operator()(const AndKey& k) const {
    return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.a) << 32) | k.b);
  }
};

}  // namespace

OptimizeResult optimize_aig(const Circuit& g) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!is_aig_type(g.type(v)) && g.type(v) != GateType::kConst0)
      throw CircuitError("optimize_aig: input is not an AIG");
  }

  // Pass 1: simplify in topological order into a fresh circuit.
  Circuit s;
  s.set_name(g.name());
  std::vector<NodeId> map(g.num_nodes(), kNullNode);
  // Constant lattice: -1 unknown, 0/1 known value (of the *new* node).
  std::unordered_map<NodeId, int> const_val;
  std::unordered_map<AndKey, NodeId, AndKeyHash> and_hash;
  std::unordered_map<NodeId, NodeId> not_hash;
  NodeId new_const0 = kNullNode;

  auto make_const0 = [&]() {
    if (new_const0 == kNullNode) {
      new_const0 = s.add_const0("const0");
      const_val[new_const0] = 0;
    }
    return new_const0;
  };
  auto val_of = [&](NodeId n) {
    auto it = const_val.find(n);
    return it == const_val.end() ? -1 : it->second;
  };

  for (NodeId v : g.ffs()) map[v] = s.add_ff(kNullNode, g.node_name(v));

  for (NodeId v : comb_topo_order(g)) {
    if (map[v] != kNullNode) continue;  // FF
    switch (g.type(v)) {
      case GateType::kPi:
        map[v] = s.add_pi(g.node_name(v));
        break;
      case GateType::kConst0:
        map[v] = make_const0();
        break;
      case GateType::kNot: {
        const NodeId x = map[g.fanin(v, 0)];
        if (s.type(x) == GateType::kNot) {
          map[v] = s.fanin(x, 0);  // NOT(NOT(y)) = y
        } else {
          auto [it, inserted] = not_hash.emplace(x, kNullNode);
          if (inserted) {
            it->second = s.add_not(x, g.node_name(v));
            const int xv = val_of(x);
            if (xv >= 0) const_val[it->second] = 1 - xv;
          }
          map[v] = it->second;
        }
        break;
      }
      case GateType::kAnd: {
        NodeId x = map[g.fanin(v, 0)];
        NodeId y = map[g.fanin(v, 1)];
        const int xv = val_of(x), yv = val_of(y);
        if (xv == 0 || yv == 0) {
          map[v] = make_const0();
          break;
        }
        if (xv == 1) {
          map[v] = y;
          break;
        }
        if (yv == 1) {
          map[v] = x;
          break;
        }
        if (x == y) {
          map[v] = x;  // AND(x, x) = x
          break;
        }
        // AND(x, NOT x) = 0
        if ((s.type(x) == GateType::kNot && s.fanin(x, 0) == y) ||
            (s.type(y) == GateType::kNot && s.fanin(y, 0) == x)) {
          map[v] = make_const0();
          break;
        }
        if (x > y) std::swap(x, y);
        auto [it, inserted] = and_hash.emplace(AndKey{x, y}, kNullNode);
        if (inserted) it->second = s.add_and(x, y, g.node_name(v));
        map[v] = it->second;
        break;
      }
      default:
        throw CircuitError("optimize_aig: unexpected node type");
    }
  }
  for (NodeId v : g.ffs()) s.set_fanin(map[v], 0, map[g.fanin(v, 0)]);
  for (std::size_t k = 0; k < g.pos().size(); ++k)
    s.add_po(map[g.pos()[k]], g.po_name(k));

  // Pass 2: dead sweep — keep PIs and the transitive fanin cone of POs
  // (traversing FF D edges).
  std::vector<bool> live(s.num_nodes(), false);
  std::vector<NodeId> work;
  for (NodeId po : s.pos())
    if (!live[po]) {
      live[po] = true;
      work.push_back(po);
    }
  for (NodeId pi : s.pis()) live[pi] = true;
  while (!work.empty()) {
    const NodeId v = work.back();
    work.pop_back();
    for (int i = 0; i < s.num_fanins(v); ++i) {
      const NodeId u = s.fanin(v, i);
      if (!live[u]) {
        live[u] = true;
        work.push_back(u);
      }
    }
  }

  OptimizeResult out;
  out.circuit.set_name(g.name());
  std::vector<NodeId> remap(s.num_nodes(), kNullNode);
  Circuit& r = out.circuit;
  for (NodeId v : s.ffs())
    if (live[v]) remap[v] = r.add_ff(kNullNode, s.node_name(v));
  for (NodeId v : comb_topo_order(s)) {
    if (!live[v] || remap[v] != kNullNode) continue;
    switch (s.type(v)) {
      case GateType::kPi:
        remap[v] = r.add_pi(s.node_name(v));
        break;
      case GateType::kConst0:
        remap[v] = r.add_const0(s.node_name(v));
        break;
      case GateType::kNot:
        remap[v] = r.add_not(remap[s.fanin(v, 0)], s.node_name(v));
        break;
      case GateType::kAnd:
        remap[v] = r.add_and(remap[s.fanin(v, 0)], remap[s.fanin(v, 1)],
                             s.node_name(v));
        break;
      default:
        throw CircuitError("optimize_aig: unexpected node type in sweep");
    }
  }
  for (NodeId v : s.ffs())
    if (live[v]) r.set_fanin(remap[v], 0, remap[s.fanin(v, 0)]);
  for (std::size_t k = 0; k < s.pos().size(); ++k)
    r.add_po(remap[s.pos()[k]], s.po_name(k));

  out.node_map.assign(g.num_nodes(), kNullNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (map[v] != kNullNode) out.node_map[v] = remap[map[v]];
  out.removed_nodes = g.num_nodes() - r.num_nodes();
  r.validate();
  return out;
}

}  // namespace deepseq
