#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"
#include "netlist/topology.hpp"

namespace deepseq {

/// Event-driven sequential logic simulator: a single-lane alternative
/// backend to the 64-lane levelized SequentialSimulator. Only gates whose
/// fanin changed are re-evaluated, using a per-level bucket queue so every
/// gate is visited at most once per cycle and strictly after its fanins.
///
/// The two backends implement the same cycle semantics (step() evaluates
/// combinational logic for the applied PI values; clock() latches FF D
/// inputs; FFs and stale values start at 0) and are cross-checked against
/// each other by property tests. The event-driven backend additionally
/// counts gate evaluations, quantifying the activity-dependent work that
/// commercial event-driven simulators exploit (paper §VI compares DeepSeq
/// inference against such a simulator).
class EventDrivenSimulator {
 public:
  explicit EventDrivenSimulator(const Circuit& c);

  const Circuit& circuit() const { return c_; }

  /// Reset FF states and gate values to 0; the next step() re-evaluates the
  /// whole combinational network once to restore consistency.
  void reset();

  /// Evaluate one cycle's combinational logic. `pi_values[k]` is the value
  /// of PI k (order of Circuit::pis()).
  void step(const std::vector<bool>& pi_values);

  /// Latch FF D values (call after step, before the next step).
  void clock();

  /// Value of a node after the latest step().
  bool value(NodeId v) const { return val_[v] != 0; }

  /// Total combinational gate evaluations performed since construction /
  /// reset (instrumentation: event-driven efficiency on low-activity
  /// workloads).
  std::uint64_t gate_evaluations() const { return evals_; }

  /// Number of step() calls since construction / reset.
  std::uint64_t cycles() const { return cycles_; }

  /// Combinational gate count (the per-cycle work of an oblivious
  /// simulator, for computing the event-driven saving).
  std::size_t num_comb_gates() const { return num_comb_gates_; }

 private:
  void schedule_fanouts(NodeId v);
  bool evaluate(NodeId v) const;

  const Circuit& c_;
  Levelization levels_;
  std::vector<std::vector<NodeId>> fanouts_;
  std::vector<std::uint8_t> val_;
  std::vector<std::uint8_t> queued_;            // node already in its bucket
  std::vector<std::vector<NodeId>> buckets_;    // pending nodes per level
  bool full_eval_pending_ = true;
  std::size_t num_comb_gates_ = 0;
  std::uint64_t evals_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace deepseq
