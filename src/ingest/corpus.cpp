#include "ingest/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <unordered_map>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "netlist/topology.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace deepseq::ingest {

namespace fs = std::filesystem;

namespace {

struct StructuralHashHasher {
  std::size_t operator()(const StructuralHash& h) const {
    std::uint64_t x = h.digest;
    x = hash_mix(x, h.num_nodes | (std::uint64_t(h.num_pis) << 32));
    x = hash_mix(x, h.num_pos | (std::uint64_t(h.num_ffs) << 32));
    return static_cast<std::size_t>(x);
  }
};

void append_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

std::string fixed3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

Corpus Corpus::scan(const std::string& dir, const CorpusOptions& options) {
  WallTimer timer;
  if (!fs::is_directory(dir))
    throw Error("corpus root is not a directory: " + dir);

  std::vector<std::string> files;  // relative paths, '/'-separated
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (std::find(options.extensions.begin(), options.extensions.end(), ext) ==
        options.extensions.end())
      continue;
    files.push_back(fs::relative(entry.path(), dir).generic_string());
  }
  std::sort(files.begin(), files.end());

  IngestOptions ingest = options.ingest;
  std::unique_ptr<runtime::ThreadPool> owned_pool;
  if (ingest.pool == nullptr) {
    const int threads = ingest.resolved_threads();
    if (threads != 1)
      ingest.pool =
          (owned_pool = std::make_unique<runtime::ThreadPool>(threads)).get();
  }

  auto& reg = obs::Registry::global();
  obs::Counter& bytes_counter = reg.counter("ingest.bytes");
  obs::Counter& files_counter = reg.counter("ingest.files");
  obs::Counter& designs_counter = reg.counter("ingest.designs");
  obs::Counter& skipped_counter = reg.counter("ingest.modules_skipped");
  obs::Counter& dup_counter = reg.counter("ingest.dup_dropped");
  obs::Histogram& parse_hist = reg.histogram("ingest.parse_ns");

  Corpus corpus;
  corpus.root_ = dir;
  std::unordered_map<StructuralHash, std::size_t, StructuralHashHasher> seen;
  std::unordered_map<std::string, int> name_counts;

  for (const std::string& rel : files) {
    StreamStats stats;
    std::vector<ParsedModule> modules;
    try {
      modules = parse_verilog_modules_file((fs::path(dir) / rel).string(),
                                           ingest, &stats);
    } catch (const Error& e) {
      throw ParseError(rel + ": " + e.what());
    }
    ++corpus.files_scanned_;
    corpus.total_bytes_ += stats.file_bytes;
    corpus.modules_skipped_ += stats.modules_skipped;
    corpus.peak_carry_bytes_ =
        std::max(corpus.peak_carry_bytes_, stats.peak_carry_bytes);
    corpus.max_token_bytes_ =
        std::max(corpus.max_token_bytes_, stats.max_token_bytes);
    files_counter.inc();
    bytes_counter.inc(stats.file_bytes);
    skipped_counter.inc(stats.modules_skipped);

    for (ParsedModule& m : modules) {
      const StructuralHash h = structural_hash(m.circuit);
      if (options.dedup && !seen.emplace(h, corpus.records_.size()).second) {
        ++corpus.dup_dropped_;
        dup_counter.inc();
        continue;
      }
      DesignRecord r;
      const int count = ++name_counts[m.circuit.name()];
      r.name = count == 1 ? m.circuit.name()
                          : m.circuit.name() + "~" + std::to_string(count);
      r.file = rel;
      r.src_bytes = m.src_bytes;
      r.nodes = static_cast<std::uint32_t>(m.circuit.num_nodes());
      r.pis = static_cast<std::uint32_t>(m.circuit.pis().size());
      r.pos = static_cast<std::uint32_t>(m.circuit.pos().size());
      r.ffs = static_cast<std::uint32_t>(m.circuit.ffs().size());
      r.levels = comb_levelize(m.circuit).depth;
      r.hash = h;
      r.parse_ms = m.parse_ms;
      parse_hist.record(m.parse_ms <= 0.0
                            ? 0
                            : static_cast<std::uint64_t>(m.parse_ms * 1e6));
      designs_counter.inc();
      corpus.records_.push_back(std::move(r));
      corpus.circuits_.push_back(std::move(m.circuit));
    }
  }
  corpus.elapsed_ms_ = timer.millis();
  return corpus;
}

Corpus Corpus::scan_from_env() {
  const std::string dir = env_string("DEEPSEQ_CORPUS_DIR", "");
  if (dir.empty())
    throw Error("DEEPSEQ_CORPUS_DIR is not set (point it at a corpus root)");
  if (!fs::is_directory(dir))
    throw Error("DEEPSEQ_CORPUS_DIR is not a directory: " + dir);
  return scan(dir);
}

std::string Corpus::manifest_json() const {
  std::string out = "{\"root\":\"";
  append_escaped(out, root_);
  out += "\",\"files\":" + std::to_string(files_scanned_);
  out += ",\"bytes\":" + std::to_string(total_bytes_);
  out += ",\"num_designs\":" + std::to_string(records_.size());
  out += ",\"modules_skipped\":" + std::to_string(modules_skipped_);
  out += ",\"dup_dropped\":" + std::to_string(dup_dropped_);
  out += ",\"peak_carry_bytes\":" + std::to_string(peak_carry_bytes_);
  out += ",\"max_token_bytes\":" + std::to_string(max_token_bytes_);
  out += ",\"elapsed_ms\":" + fixed3(elapsed_ms_);
  out += ",\"designs\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const DesignRecord& r = records_[i];
    out += i == 0 ? "\n{\"name\":\"" : ",\n{\"name\":\"";
    append_escaped(out, r.name);
    out += "\",\"file\":\"";
    append_escaped(out, r.file);
    out += "\",\"bytes\":" + std::to_string(r.src_bytes);
    out += ",\"nodes\":" + std::to_string(r.nodes);
    out += ",\"pis\":" + std::to_string(r.pis);
    out += ",\"pos\":" + std::to_string(r.pos);
    out += ",\"ffs\":" + std::to_string(r.ffs);
    out += ",\"levels\":" + std::to_string(r.levels);
    out += ",\"hash\":\"";
    append_escaped(out, r.hash.to_string());
    out += "\",\"parse_ms\":" + fixed3(r.parse_ms);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace deepseq::ingest
