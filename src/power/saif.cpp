#include "power/saif.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/error.hpp"

namespace deepseq {

void SaifDocument::add_net(const std::string& name, double logic1_prob,
                           double toggle_rate) {
  SaifNet net;
  net.t1 = static_cast<long long>(std::llround(logic1_prob * static_cast<double>(duration)));
  net.t0 = duration - net.t1;
  net.tc = static_cast<long long>(std::llround(toggle_rate * static_cast<double>(duration)));
  nets.emplace_back(name, net);
}

std::unordered_map<std::string, SaifNet> SaifDocument::net_map() const {
  std::unordered_map<std::string, SaifNet> out;
  out.reserve(nets.size());
  for (const auto& [name, net] : nets) out.emplace(name, net);
  return out;
}

void write_saif(const SaifDocument& doc, std::ostream& out) {
  out << "(SAIFILE\n";
  out << "  (SAIFVERSION \"2.0\")\n";
  out << "  (DIRECTION \"backward\")\n";
  out << "  (DURATION " << doc.duration << ")\n";
  out << "  (INSTANCE " << (doc.design.empty() ? "top" : doc.design) << "\n";
  out << "    (NET\n";
  for (const auto& [name, net] : doc.nets) {
    out << "      (" << name << " (T0 " << net.t0 << ") (T1 " << net.t1
        << ") (TC " << net.tc << "))\n";
  }
  out << "    )\n  )\n)\n";
}

std::string write_saif_string(const SaifDocument& doc) {
  std::ostringstream out;
  write_saif(doc, out);
  return out.str();
}

void write_saif_file(const SaifDocument& doc, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("write_saif_file: cannot open " + path);
  write_saif(doc, out);
}

namespace {

/// Tiny s-expression tokenizer: parentheses and atoms.
class SexprLexer {
 public:
  explicit SexprLexer(std::istream& in) : in_(in) {}

  /// Next token, or empty at EOF. Quoted strings come back without quotes.
  std::string next() {
    char ch;
    while (in_.get(ch)) {
      if (std::isspace(static_cast<unsigned char>(ch))) continue;
      if (ch == '(' || ch == ')') return std::string(1, ch);
      if (ch == '"') {
        std::string s;
        while (in_.get(ch) && ch != '"') s.push_back(ch);
        return s;
      }
      std::string s(1, ch);
      while (in_.get(ch)) {
        if (std::isspace(static_cast<unsigned char>(ch)) || ch == '(' || ch == ')') {
          if (ch == '(' || ch == ')') in_.unget();
          break;
        }
        s.push_back(ch);
      }
      return s;
    }
    return {};
  }

 private:
  std::istream& in_;
};

long long to_ll(const std::string& tok) {
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end == tok.c_str()) throw ParseError("SAIF: expected integer, got '" + tok + "'");
  return v;
}

}  // namespace

SaifDocument parse_saif(std::istream& in) {
  SaifDocument doc;
  SexprLexer lex(in);

  // Simple recursive-descent over the fixed structure; unknown sections are
  // skipped by paren balancing.
  std::string tok = lex.next();
  if (tok != "(") throw ParseError("SAIF: expected '('");
  tok = lex.next();
  if (tok != "SAIFILE") throw ParseError("SAIF: expected SAIFILE");

  std::function<void(int)> skip_section = [&](int depth) {
    while (depth > 0) {
      const std::string t = lex.next();
      if (t.empty()) throw ParseError("SAIF: unexpected EOF");
      if (t == "(") ++depth;
      if (t == ")") --depth;
    }
  };

  auto parse_net_entry = [&]() {
    // Already consumed "(": next is the net name.
    const std::string name = lex.next();
    SaifNet net;
    for (;;) {
      std::string t = lex.next();
      if (t == ")") break;
      if (t != "(") throw ParseError("SAIF: malformed net entry for " + name);
      const std::string key = lex.next();
      const std::string val = lex.next();
      if (key == "T0") net.t0 = to_ll(val);
      else if (key == "T1") net.t1 = to_ll(val);
      else if (key == "TC") net.tc = to_ll(val);
      if (lex.next() != ")") throw ParseError("SAIF: expected ')' after " + key);
    }
    doc.nets.emplace_back(name, net);
  };

  for (;;) {
    tok = lex.next();
    if (tok == ")") break;  // end of SAIFILE
    if (tok.empty()) throw ParseError("SAIF: unexpected EOF");
    if (tok != "(") throw ParseError("SAIF: expected '(' in SAIFILE body");
    const std::string section = lex.next();
    if (section == "DURATION") {
      doc.duration = to_ll(lex.next());
      if (lex.next() != ")") throw ParseError("SAIF: malformed DURATION");
    } else if (section == "INSTANCE") {
      doc.design = lex.next();
      for (;;) {
        std::string t = lex.next();
        if (t == ")") break;
        if (t != "(") throw ParseError("SAIF: expected '(' in INSTANCE");
        const std::string sub = lex.next();
        if (sub == "NET") {
          for (;;) {
            std::string t2 = lex.next();
            if (t2 == ")") break;
            if (t2 != "(") throw ParseError("SAIF: expected '(' in NET");
            parse_net_entry();
          }
        } else {
          skip_section(1);
        }
      }
    } else {
      skip_section(1);  // SAIFVERSION, DIRECTION, etc.
    }
  }
  return doc;
}

SaifDocument parse_saif_string(const std::string& text) {
  std::istringstream in(text);
  return parse_saif(in);
}

SaifDocument parse_saif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("parse_saif_file: cannot open " + path);
  return parse_saif(in);
}

}  // namespace deepseq
