#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace deepseq::runtime {
class ThreadPool;
}

namespace deepseq::ingest {

/// Knobs of the streaming frontend. Zero/negative values defer to the
/// environment: chunk_bytes 0 reads DEEPSEQ_INGEST_CHUNK (default 1 MiB,
/// must parse to a positive integer), threads < 0 reads
/// DEEPSEQ_INGEST_THREADS (default 1 = parse inline on the calling
/// thread; 0 = one worker per hardware thread). Results are bit-identical
/// at every chunk size and thread count by construction: one lexer feeds
/// fixed-size windows in order, and each module's token slice runs through
/// the same `parse_verilog_tokens` the legacy parser uses.
struct IngestOptions {
  std::size_t chunk_bytes = 0;
  int threads = -1;
  /// Skip modules containing behavioral constructs (always/initial/@/
  /// posedge/negedge/specify) instead of failing the file — gate-level
  /// corpora ship a behavioral DFF companion module next to the netlists.
  bool skip_behavioral = true;
  /// Parse worker pool shared across files (e.g. by Corpus); when set it
  /// overrides `threads`. Not owned.
  runtime::ThreadPool* pool = nullptr;

  std::size_t resolved_chunk_bytes() const;
  int resolved_threads() const;
};

/// One structural module parsed out of a stream, in source order.
struct ParsedModule {
  Circuit circuit;
  std::uint64_t src_bytes = 0;  // byte span from `module` through `endmodule`
  double parse_ms = 0.0;        // tokens -> Circuit wall time (lexing excluded)
};

/// Observed per-stream facts, including the structural no-slurp evidence:
/// peak_carry_bytes (the lexer's only cross-chunk buffer, bounded by the
/// longest token) and reader_buffer_bytes (0 when mmap-backed, one chunk
/// otherwise) are the two owned allocations that could conceivably scale
/// with the input — tests and the CI smoke assert
/// peak_carry_bytes <= max_token_bytes and reader_buffer_bytes <= chunk.
struct StreamStats {
  std::uint64_t file_bytes = 0;
  std::uint64_t modules_parsed = 0;
  std::uint64_t modules_skipped = 0;
  std::size_t chunk_bytes = 0;
  std::size_t peak_carry_bytes = 0;
  std::size_t max_token_bytes = 0;
  std::size_t reader_buffer_bytes = 0;
  bool mmap_backed = false;
  double elapsed_ms = 0.0;
};

/// Parse every structural module of a Verilog netlist file, lexing in
/// chunks (mmap-backed, never slurping the text) and parsing module token
/// slices on the pool when one is configured. Modules come back in source
/// order; the first parse/lex error in source order is rethrown.
std::vector<ParsedModule> parse_verilog_modules_file(
    const std::string& path, const IngestOptions& options = {},
    StreamStats* stats = nullptr);

/// Same frontend over an in-memory text (tests use this to sweep chunk
/// sizes without touching the filesystem).
std::vector<ParsedModule> parse_verilog_modules_string(
    const std::string& text, const IngestOptions& options = {},
    StreamStats* stats = nullptr);

/// Streaming replacement for the legacy file entry point: lex chunks only
/// until the first `endmodule`, parse that one module, ignore the rest of
/// the file (exactly the legacy single-module behavior, without the
/// whole-file std::string). netlist::parse_verilog_file routes here.
Circuit parse_verilog_file_first_module(const std::string& path,
                                        std::string fallback_name,
                                        std::size_t chunk_bytes = 0);

}  // namespace deepseq::ingest
