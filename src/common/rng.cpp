#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace deepseq {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not be seeded with the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x1ULL;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw Error("Rng::uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw Error("Rng::uniform_int: hi < lo");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::bernoulli_word(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~0ULL;
  // Bit-sliced comparison U < p over 64 lanes: walk the binary expansion of
  // p from LSB to MSB, consuming one uniform word per bit. 30 bits give a
  // quantization error below 1e-9 at ~1/2 the cost of per-lane doubles.
  constexpr int kBits = 30;
  auto scaled = static_cast<std::uint64_t>(
      p * static_cast<double>(1ULL << kBits) + 0.5);
  if (scaled >= (1ULL << kBits)) scaled = (1ULL << kBits) - 1;
  if (scaled == 0) scaled = 1;
  std::uint64_t acc = 0;
  for (int i = 0; i < kBits; ++i) {
    const std::uint64_t u = next_u64();
    acc = ((scaled >> i) & 1ULL) ? (~u | acc) : (~u & acc);
  }
  return acc;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace deepseq
