#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace deepseq::runtime {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.completed(), 100u);
}

TEST(ThreadPool, SingleThreadPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i)
    pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, WaitIdleCoversTasksSubmittedFromTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &count] {
      ++count;
      pool.submit([&count] { ++count; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, SubmitWithResultDeliversValue) {
  ThreadPool pool(2);
  auto f = pool.submit_with_result([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitWithResultTransportsExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit_with_result(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsFallsBackToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPool, StressManyProducersManyTasks) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  {
    ThreadPool producers(4);
    for (int p = 0; p < 4; ++p) {
      producers.submit([&pool, &sum, p] {
        for (int i = 0; i < 500; ++i) {
          const long long v = 1000LL * p + i;
          pool.submit([&sum, v] { sum += v; });
        }
      });
    }
    producers.wait_idle();
  }
  pool.wait_idle();
  long long expect = 0;
  for (int p = 0; p < 4; ++p)
    for (int i = 0; i < 500; ++i) expect += 1000LL * p + i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.wait_idle();
  pool.wait_idle();
  EXPECT_EQ(pool.completed(), 0u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) pool.submit([&count] { ++count; });
  }
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace deepseq::runtime
