#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"
#include "netlist/topology.hpp"
#include "sim/workload.hpp"

namespace deepseq {

/// Levelized 64-lane bit-parallel sequential logic simulator. Lane i of
/// every value word is an independent simulation running the same circuit
/// (64 sequences advance per step). FFs start at 0; each step() evaluates
/// the combinational logic for the supplied PI values, and clock() latches
/// the FF D inputs into the FF states.
class SequentialSimulator {
 public:
  explicit SequentialSimulator(const Circuit& c);

  const Circuit& circuit() const { return c_; }

  /// Reset all FFs (and stale gate values) to 0.
  void reset();

  /// Evaluate one cycle's combinational logic. `pi_words[k]` holds the 64
  /// lanes of PI k (order of Circuit::pis()).
  void step(const std::vector<std::uint64_t>& pi_words);

  /// Latch FF D values (call after step, before the next step).
  void clock();

  /// Value word of a node after the latest step().
  std::uint64_t value(NodeId v) const { return val_[v]; }
  const std::vector<std::uint64_t>& values() const { return val_; }

  /// Pin `v` to a constant in every lane until clear_forcing() — stuck-at
  /// fault injection. The forced value overrides evaluation (gates), PI
  /// application and FF latching within the same cycle.
  void force_stuck(NodeId v, bool value);
  void clear_forcing();

 private:
  const Circuit& c_;
  std::vector<NodeId> eval_order_;  // combinational gates, level order
  std::vector<std::uint64_t> val_;
  NodeId forced_node_ = kNullNode;
  std::uint64_t forced_word_ = 0;
};

/// Per-node switching/logic statistics of one simulated workload — the
/// supervision of the paper's multi-task objective (§III-A) and the input
/// to power analysis.
struct NodeActivity {
  std::uint64_t logic_samples = 0;       // cycles * lanes
  std::uint64_t transition_samples = 0;  // (cycles-1) * lanes
  std::vector<double> logic1;            // P(node = 1)
  std::vector<double> tr01;              // P(0 -> 1 between cycles)
  std::vector<double> tr10;              // P(1 -> 0)
  std::vector<std::uint64_t> toggle_count;  // raw toggles (01 + 10)

  /// Average per-cycle toggle rate of a node.
  double toggle_rate(NodeId v) const { return tr01[v] + tr10[v]; }
  /// Mean toggle rate over a node subset (all nodes when empty).
  double mean_toggle_rate() const;
  /// Fraction of nodes with zero observed transitions (paper §V-A1 reports
  /// ~70% static gates under realistic workloads).
  double static_fraction() const;
};

struct ActivityOptions {
  int num_cycles = 10000;
  int num_words = 1;  // 64 lanes per word
};

/// Simulate `workload` on `c` and collect logic/transition probabilities.
NodeActivity collect_activity(const Circuit& c, const Workload& w,
                              const ActivityOptions& opt = {});

}  // namespace deepseq
