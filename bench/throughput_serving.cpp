// Serving throughput of the concurrent batched inference runtime
// (src/runtime/): requests/sec and p50/p99 latency vs worker-thread count
// (1/2/4/8) and cache temperature, for both embedding backends — the
// paper's levelized DeepSeq propagation and the PACE-style parallel
// encoder (§VI). Each configuration replays the same closed-burst trace
// twice against one engine: the first pass is all-cold (every structure
// levelized, every forward pass computed), the second is warm (the
// structural-hash-keyed cache serves repeats). Emits a table and a JSON
// document (serving_throughput.json) for cross-commit tracking.
//
// Knobs: DEEPSEQ_SERVE_REQUESTS (trace length), DEEPSEQ_SERVE_CIRCUITS,
// DEEPSEQ_FULL=1 for paper-scale model presets.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "dataset/generator.hpp"
#include "runtime/inference_engine.hpp"
#include "runtime/server_loop.hpp"

using namespace deepseq;
using namespace deepseq::bench;
using namespace deepseq::runtime;

namespace {

struct RunResult {
  double wall_s = 0.0;
  double qps = 0.0;
  LatencySummary latency;
};

/// Submit the whole trace as fast as possible (closed burst) and drain:
/// wall time measures pipeline throughput, per-request futures measure
/// latency under that load.
RunResult replay(InferenceEngine& engine,
                 const std::vector<EmbeddingRequest>& trace) {
  std::vector<std::future<EmbeddingResult>> futures;
  futures.reserve(trace.size());
  WallTimer t;
  for (const auto& r : trace) futures.push_back(engine.submit(r));
  engine.drain();
  RunResult out;
  out.wall_s = t.seconds();
  std::vector<double> total_ms;
  total_ms.reserve(futures.size());
  for (auto& f : futures) total_ms.push_back(f.get().total_ms);
  out.qps = out.wall_s > 0 ? static_cast<double>(trace.size()) / out.wall_s : 0;
  out.latency = summarize_latencies(std::move(total_ms));
  return out;
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("SERVING", "batched inference runtime throughput (src/runtime)",
               cfg);

  const int num_requests =
      static_cast<int>(env_int("DEEPSEQ_SERVE_REQUESTS", cfg.full ? 512 : 96));
  const int num_circuits =
      static_cast<int>(env_int("DEEPSEQ_SERVE_CIRCUITS", 6));
  const int workloads_per_circuit = 4;

  // Servable fleet: AIG-only generated netlists of increasing size.
  Rng rng(cfg.eval_seed);
  std::vector<std::shared_ptr<const Circuit>> circuits;
  for (int i = 0; i < num_circuits; ++i) {
    GeneratorSpec spec;
    spec.name = "serve" + std::to_string(i);
    spec.num_pis = 6 + i;
    spec.num_ffs = 4 + i;
    spec.num_gates = 80 + 40 * i;
    for (int t = 0; t < kNumGateTypes; ++t) spec.gate_weights[t] = 0.0;
    spec.gate_weights[static_cast<int>(GateType::kAnd)] = 4.0;
    spec.gate_weights[static_cast<int>(GateType::kNot)] = 2.0;
    circuits.push_back(
        std::make_shared<const Circuit>(generate_circuit(spec, rng)));
  }
  std::vector<std::vector<Workload>> workloads(circuits.size());
  for (std::size_t i = 0; i < circuits.size(); ++i)
    for (int k = 0; k < workloads_per_circuit; ++k)
      workloads[i].push_back(random_workload(*circuits[i], rng));

  std::printf("trace: %d requests over %d circuits x %d workloads\n\n",
              num_requests, num_circuits, workloads_per_circuit);

  JsonWriter json;
  json.begin_object();
  json.field("bench", "serving_throughput");
  json.field("requests", num_requests);
  json.field("circuits", num_circuits);
  json.begin_array("rows");

  double baseline_cold_qps[2] = {0.0, 0.0};  // per backend, threads == 1
  double best_warm_qps_4t[2] = {0.0, 0.0};

  for (const Backend backend : {Backend::kDeepSeqCustom, Backend::kPace}) {
    const int bi = backend == Backend::kPace ? 1 : 0;
    std::printf("%-8s | %7s | %9s %9s %9s | %9s %9s %9s | %8s\n",
                "backend", "threads", "cold q/s", "p50 ms", "p99 ms",
                "warm q/s", "p50 ms", "p99 ms", "hit rate");
    std::printf("%.*s\n", 98, std::string(98, '-').c_str());
    for (const int threads : {1, 2, 4, 8}) {
      // Deterministic trace shared by every configuration.
      Rng trace_rng(4242);
      std::vector<EmbeddingRequest> trace;
      for (int i = 0; i < num_requests; ++i) {
        EmbeddingRequest r;
        const std::size_t c = trace_rng.uniform_index(circuits.size());
        r.circuit = circuits[c];
        r.workload = workloads[c][trace_rng.uniform_index(workloads_per_circuit)];
        r.backend = backend;
        r.init_seed = 7;
        trace.push_back(std::move(r));
      }

      EngineConfig ecfg;
      ecfg.threads = threads;
      ecfg.max_batch = 8;
      ecfg.model = ModelConfig::deepseq(cfg.hidden, cfg.iterations);
      ecfg.pace.hidden_dim = cfg.hidden;
      InferenceEngine engine(ecfg);

      const RunResult cold = replay(engine, trace);
      const RunResult warm = replay(engine, trace);
      const auto stats = engine.cache_stats();
      const double hit_rate = stats.embeddings.hit_rate();

      if (threads == 1) baseline_cold_qps[bi] = cold.qps;
      if (threads == 4) best_warm_qps_4t[bi] = warm.qps;

      std::printf("%-8s | %7d | %9.1f %9.2f %9.2f | %9.1f %9.2f %9.2f | %7.0f%%\n",
                  backend_name(backend), threads, cold.qps,
                  cold.latency.p50_ms, cold.latency.p99_ms, warm.qps,
                  warm.latency.p50_ms, warm.latency.p99_ms, 100.0 * hit_rate);

      json.begin_object();
      json.field("backend", backend_name(backend));
      json.field("threads", threads);
      json.field("cold_qps", cold.qps);
      json.field("cold_p50_ms", cold.latency.p50_ms);
      json.field("cold_p99_ms", cold.latency.p99_ms);
      json.field("warm_qps", warm.qps);
      json.field("warm_p50_ms", warm.latency.p50_ms);
      json.field("warm_p99_ms", warm.latency.p99_ms);
      json.field("embedding_hit_rate", hit_rate);
      json.field("structure_hits", stats.structures.hits);
      json.field("structure_misses", stats.structures.misses);
      json.end_object();
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  json.end_array();
  for (int bi = 0; bi < 2; ++bi) {
    const double speedup = baseline_cold_qps[bi] > 0
                               ? best_warm_qps_4t[bi] / baseline_cold_qps[bi]
                               : 0.0;
    const char* name = bi == 1 ? "pace" : "deepseq";
    std::printf("%s: 4-thread warm vs 1-thread cold speedup: %.1fx\n", name,
                speedup);
    json.field(std::string(name) + "_warm4_vs_cold1_speedup", speedup);
  }
  json.end_object();
  write_json_file("serving_throughput.json", json.str());
  return 0;
}
