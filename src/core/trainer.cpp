#include "core/trainer.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "artifact/model_io.hpp"

namespace deepseq {

using nn::Graph;
using nn::Tensor;
using nn::Var;

namespace {

double mean_abs_error(const Tensor& pred, const Tensor& target) {
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    acc += std::fabs(pred.data()[i] - target.data()[i]);
  return pred.size() ? acc / static_cast<double>(pred.size()) : 0.0;
}

}  // namespace

Tensor balanced_tr_weights(const Tensor& target_tr) {
  constexpr float kEps = 0.005f;
  std::size_t active = 0;
  for (std::size_t i = 0; i < target_tr.size(); ++i)
    if (target_tr.data()[i] > kEps) ++active;
  const std::size_t total = target_tr.size();
  const std::size_t still = total - active;
  Tensor w(target_tr.rows(), target_tr.cols());
  if (active == 0 || still == 0) {
    w.fill(1.0f);
    return w;
  }
  const float w_active = static_cast<float>(still);
  const float w_static = static_cast<float>(active);
  for (std::size_t i = 0; i < total; ++i)
    w.data()[i] = target_tr.data()[i] > kEps ? w_active : w_static;
  return w;
}

Trainer::Trainer(DeepSeqModel& model, const TrainOptions& options)
    : model_(model),
      options_(options),
      adam_(model.params(),
            nn::AdamOptions{options.lr, 0.9f, 0.999f, 1e-8f, options.grad_clip}) {}

std::vector<EpochStats> Trainer::fit(const std::vector<TrainSample>& train,
                                     const std::vector<TrainSample>* val) {
  std::vector<EpochStats> history;
  Rng shuffle_rng(options_.shuffle_seed);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double loss_sum = 0.0;
    int in_batch = 0;
    adam_.zero_grad();
    for (std::size_t idx = 0; idx < order.size(); ++idx) {
      const TrainSample& s = train[order[idx]];
      Graph g(true);
      const auto out = model_.forward(g, s.graph, s.workload, s.init_seed);
      const Var tr_loss =
          options_.balance_tr
              ? g.l1_loss_weighted(out.tr, s.target_tr,
                                   balanced_tr_weights(s.target_tr))
              : g.l1_loss(out.tr, s.target_tr);
      const Var loss = g.add(g.scale(tr_loss, options_.weight_tr),
                             g.scale(g.l1_loss(out.lg, s.target_lg),
                                     options_.weight_lg));
      loss_sum += loss->value.at(0, 0);
      g.backward(loss);
      if (++in_batch >= options_.batch_size || idx + 1 == order.size()) {
        adam_.step();
        adam_.zero_grad();
        in_batch = 0;
      }
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = train.empty() ? 0.0 : loss_sum / static_cast<double>(train.size());
    if (val != nullptr) stats.val = evaluate(model_, *val);
    if (options_.verbose) {
      std::printf("  epoch %3d  loss %.4f", epoch, stats.mean_loss);
      if (val != nullptr)
        std::printf("  val PE(TR) %.4f  PE(LG) %.4f", stats.val.avg_pe_tr,
                    stats.val.avg_pe_lg);
      std::printf("\n");
      std::fflush(stdout);
    }
    history.push_back(stats);
    ++epochs_completed_;
    last_mean_loss_ = stats.mean_loss;
  }
  return history;
}

std::uint64_t Trainer::save_artifact(const std::string& path) const {
  artifact::Artifact a = artifact::snapshot(model_);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", last_mean_loss_);
  a.set_metadata("epochs", std::to_string(epochs_completed_));
  a.set_metadata("final_loss", buf);
  std::snprintf(buf, sizeof(buf), "%.6g", static_cast<double>(options_.lr));
  a.set_metadata("lr", buf);
  a.set_metadata("trainer", "deepseq::Trainer");
  artifact::save_artifact(path, a);
  return a.manifest.content_hash;
}

Predictions predict(const DeepSeqModel& model, const TrainSample& sample) {
  Graph g(false);
  const auto out = model.forward(g, sample.graph, sample.workload, sample.init_seed);
  return Predictions{out.tr->value, out.lg->value};
}

EvalMetrics evaluate(const DeepSeqModel& model,
                     const std::vector<TrainSample>& samples) {
  EvalMetrics m;
  if (samples.empty()) return m;
  for (const auto& s : samples) {
    const Predictions p = predict(model, s);
    m.avg_pe_tr += mean_abs_error(p.tr, s.target_tr);
    m.avg_pe_lg += mean_abs_error(p.lg, s.target_lg);
  }
  m.avg_pe_tr /= static_cast<double>(samples.size());
  m.avg_pe_lg /= static_cast<double>(samples.size());
  return m;
}

}  // namespace deepseq
