#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace deepseq {

/// Gate vocabulary. The first five types form the sequential-AIG subset the
/// paper's model consumes (PI, AND, NOT, FF, plus CONST0 which optimization
/// removes); the rest are generic gates accepted by the parsers and the test
/// designs of Table IV, decomposed to AND/NOT before inference (paper §V-A2).
enum class GateType : std::uint8_t {
  kConst0 = 0,
  kPi,
  kAnd,
  kNot,
  kFf,  // D flip-flop; fanin 0 is the D input, initial state 0.
  kBuf,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kMux,  // fanins: (select, then-input, else-input); out = s ? a : b.
};

constexpr int kNumGateTypes = 12;

/// Number of fanins the type requires (2-input gates only, per the paper).
int gate_arity(GateType t);

/// Human-readable name, matching BENCH spelling where one exists.
std::string_view gate_type_name(GateType t);

/// Parse a BENCH-style gate keyword (case-insensitive). Throws ParseError.
GateType parse_gate_type(std::string_view s);

/// True for the node types a strict sequential AIG may contain.
bool is_aig_type(GateType t);

/// True for types with sequential behaviour (currently only kFf).
inline bool is_sequential(GateType t) { return t == GateType::kFf; }

/// Combinational evaluation on single-bit values (0/1). `s` is only used by
/// kMux. FF/PI/CONST are not evaluable here.
bool eval_gate(GateType t, bool a, bool b = false, bool s = false);

/// Word-parallel combinational evaluation (64 lanes at once).
std::uint64_t eval_gate_word(GateType t, std::uint64_t a, std::uint64_t b = 0,
                             std::uint64_t s = 0);

}  // namespace deepseq
