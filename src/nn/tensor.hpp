#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace deepseq::nn {

/// Dense row-major 2-D float matrix. Vectors are 1xN or Nx1 tensors; a
/// scalar is 1x1. This is the only numeric container the NN substrate uses —
/// every model quantity in the paper (node states, attention scores, GRU
/// gates, regressor outputs) is a matrix of [#nodes-in-level x dim].
class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols) : rows_(rows), cols_(cols), data_(checked_size(rows, cols), 0.0f) {}

  static Tensor zeros(int rows, int cols) { return Tensor(rows, cols); }
  static Tensor full(int rows, int cols, float value);
  static Tensor scalar(float value);
  static Tensor from_rows(const std::vector<std::vector<float>>& rows);
  /// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
  static Tensor xavier(int rows, int cols, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool same_shape(const Tensor& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  float& at(int r, int c) { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
  float at(int r, int c) const { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
  float* row(int r) { return data_.data() + static_cast<std::size_t>(r) * cols_; }
  const float* row(int r) const { return data_.data() + static_cast<std::size_t>(r) * cols_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Frobenius-style reductions used by tests and the trainer.
  float sum() const;
  float mean() const;
  float abs_max() const;

  std::string shape_string() const;

 private:
  static std::size_t checked_size(int rows, int cols);

  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

// ---- out-of-place kernels (no autograd; the Graph layer wraps these) ------

/// C = A * B. Shapes: (m x k) * (k x n) -> (m x n).
Tensor matmul(const Tensor& a, const Tensor& b);
/// C += A^T * B. Shapes: (k x m)^T * (k x n) -> adds into (m x n).
void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& out);
/// C += A * B^T. Shapes: (m x k) * (n x k)^T -> adds into (m x n).
void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out);

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
/// A (r x c) + row vector (1 x c) broadcast over rows.
Tensor add_row(const Tensor& a, const Tensor& row);
Tensor scale(const Tensor& a, float s);
void add_in_place(Tensor& into, const Tensor& what);
void scale_in_place(Tensor& t, float s);

Tensor sigmoid(const Tensor& a);
Tensor tanh_t(const Tensor& a);
Tensor relu(const Tensor& a);

}  // namespace deepseq::nn
