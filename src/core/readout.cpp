#include "core/readout.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "nn/adam.hpp"

namespace deepseq {

const char* pool_name(PoolKind k) {
  switch (k) {
    case PoolKind::kMean: return "mean";
    case PoolKind::kMax: return "max";
    case PoolKind::kAttention: return "attention";
  }
  return "?";
}

Readout::Readout(PoolKind kind, int hidden_dim, int out_dim, Rng& rng,
                 std::string name)
    : kind_(kind),
      hidden_dim_(hidden_dim),
      out_dim_(out_dim),
      proj_(hidden_dim, out_dim, rng, name + ".proj") {
  if (kind == PoolKind::kAttention)
    score_ = nn::Linear(hidden_dim, 1, rng, name + ".score");
}

nn::Var Readout::apply(nn::Graph& g, const nn::Var& node_embeddings) const {
  const int n = node_embeddings->value.rows();
  if (node_embeddings->value.cols() != hidden_dim_)
    throw Error("Readout::apply: embedding width mismatch");
  const std::vector<int> all(static_cast<std::size_t>(n), 0);
  nn::Var pooled;
  switch (kind_) {
    case PoolKind::kMean:
      pooled = g.scale(g.segment_sum(node_embeddings, all, 1),
                       1.0f / static_cast<float>(n));
      break;
    case PoolKind::kMax:
      pooled = g.segment_max(node_embeddings, all, 1);
      break;
    case PoolKind::kAttention: {
      const nn::Var alpha =
          g.segment_softmax(score_.apply(g, node_embeddings), all, 1);
      pooled = g.segment_sum(g.mul_col(node_embeddings, alpha), all, 1);
      break;
    }
  }
  // tanh keeps graph embeddings bounded and gives a linear head on top of
  // the readout a nonlinearity over the pooled features.
  return g.tanh_(proj_.apply(g, pooled));
}

void Readout::collect_params(nn::NamedParams& out) const {
  if (kind_ == PoolKind::kAttention) score_.collect_params(out);
  proj_.collect_params(out);
}

NetlistClassifier::NetlistClassifier(const DeepSeqModel& backbone,
                                     PoolKind pool, int num_classes,
                                     std::uint64_t seed)
    : backbone_(backbone), num_classes_(num_classes) {
  Rng rng(seed);
  const int hidden = backbone.config().hidden_dim;
  readout_ = Readout(pool, hidden, hidden, rng, "clf.readout");
  head_ = nn::Linear(hidden, num_classes, rng, "clf.head");
}

nn::Var NetlistClassifier::logits(nn::Graph& g,
                                  const LabelledNetlist& sample) const {
  const nn::Var emb =
      backbone_.embed(g, sample.graph, sample.workload, sample.init_seed);
  return head_.apply(g, readout_.apply(g, emb));
}

int NetlistClassifier::predict(const LabelledNetlist& sample) const {
  nn::Graph g(/*grad_enabled=*/false);
  const nn::Var z = logits(g, sample);
  const float* row = z->value.row(0);
  return static_cast<int>(std::max_element(row, row + num_classes_) - row);
}

double NetlistClassifier::accuracy(
    const std::vector<LabelledNetlist>& samples) const {
  if (samples.empty()) return 0.0;
  int correct = 0;
  for (const LabelledNetlist& s : samples)
    if (predict(s) == s.label) ++correct;
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

nn::NamedParams NetlistClassifier::head_params() const {
  nn::NamedParams out;
  readout_.collect_params(out);
  head_.collect_params(out);
  return out;
}

std::vector<ClassifierEpochStats> train_classifier(
    NetlistClassifier& clf, const std::vector<LabelledNetlist>& train,
    const ClassifierTrainOptions& options) {
  if (train.empty()) throw Error("train_classifier: empty training set");
  nn::AdamOptions aopt;
  aopt.lr = options.lr;
  nn::Adam adam(clf.head_params(), aopt);

  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng shuffle_rng(options.shuffle_seed);

  std::vector<ClassifierEpochStats> history;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double loss_sum = 0.0;
    int correct = 0;
    for (std::size_t i : order) {
      const LabelledNetlist& s = train[i];
      nn::Graph g;
      const nn::Var z = clf.logits(g, s);
      const float* row = z->value.row(0);
      if (static_cast<int>(std::max_element(row, row + clf.num_classes()) -
                           row) == s.label)
        ++correct;
      const nn::Var loss = g.softmax_cross_entropy(z, {s.label});
      loss_sum += loss->value.at(0, 0);
      adam.zero_grad();
      g.backward(loss);
      adam.step();
    }
    ClassifierEpochStats st;
    st.epoch = epoch;
    st.mean_loss = loss_sum / static_cast<double>(train.size());
    st.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(train.size());
    history.push_back(st);
    if (options.verbose)
      std::fprintf(stderr, "[clf] epoch %d loss %.4f acc %.3f\n", epoch,
                   st.mean_loss, st.train_accuracy);
  }
  return history;
}

}  // namespace deepseq
