#include "core/pace.hpp"

#include <cmath>
#include <deque>
#include <numeric>

#include "common/error.hpp"
#include "netlist/structural_hash.hpp"
#include "netlist/topology.hpp"
#include "nn/adam.hpp"

namespace deepseq {

std::uint64_t mix_config(std::uint64_t h, const PaceConfig& p) {
  h = hash_mix(h, static_cast<std::uint64_t>(p.hidden_dim));
  h = hash_mix(h, static_cast<std::uint64_t>(p.layers));
  h = hash_mix(h, static_cast<std::uint64_t>(p.max_ancestors));
  h = hash_mix(h, static_cast<std::uint64_t>(p.pos_dim));
  return hash_mix(h, p.seed);
}

using nn::Graph;
using nn::RowRef;
using nn::Tensor;
using nn::Var;

PaceGraph build_pace_graph(const Circuit& aig, const PaceConfig& config) {
  if (!aig.is_strict_aig())
    throw CircuitError("build_pace_graph: circuit is not a strict AIG");
  const Levelization lv = comb_levelize(aig);
  const int n = static_cast<int>(aig.num_nodes());

  PaceGraph g;
  g.num_nodes = n;
  g.pis = aig.pis();

  // One-hot gate type || sinusoidal encoding of the comb logic level (the
  // stand-in for PACE's positional encoding: topological position is what
  // lets a parallel encoder recover the order a sequential pass provides).
  g.features = Tensor(n, kFeatureDim + config.pos_dim);
  for (NodeId v = 0; v < aig.num_nodes(); ++v) {
    g.features.at(static_cast<int>(v), feature_index(aig.type(v))) = 1.0f;
    const auto level = static_cast<double>(lv.level[v]);
    for (int k = 0; k < config.pos_dim / 2; ++k) {
      const double freq = std::pow(10000.0, -2.0 * k / config.pos_dim);
      g.features.at(static_cast<int>(v), kFeatureDim + 2 * k) =
          static_cast<float>(std::sin(level * freq));
      g.features.at(static_cast<int>(v), kFeatureDim + 2 * k + 1) =
          static_cast<float>(std::cos(level * freq));
    }
  }

  // Bounded ancestor sets: breadth-first through comb-view fanins (FF
  // D-edges severed, so FFs act as pseudo sources — the same cycle
  // breaking as the levelized scheme). Every non-PI node attends to
  // itself + its nearest max_ancestors ancestors.
  std::vector<char> seen(aig.num_nodes(), 0);
  for (NodeId v = 0; v < aig.num_nodes(); ++v) {
    const GateType t = aig.type(v);
    if (t == GateType::kPi) continue;   // PIs stay pinned, never updated
    if (t == GateType::kConst0) {       // constants likewise (pinned to 0)
      g.consts.push_back(v);
      continue;
    }
    const int row = static_cast<int>(g.targets.size());
    g.targets.push_back(v);
    std::fill(seen.begin(), seen.end(), 0);
    std::deque<NodeId> frontier{v};
    seen[v] = 1;
    int taken = 0;
    while (!frontier.empty() && taken < config.max_ancestors + 1) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      g.sources.push_back(u);
      g.segment.push_back(row);
      ++taken;
      const GateType ut = aig.type(u);
      if (ut == GateType::kPi || ut == GateType::kFf ||
          ut == GateType::kConst0)
        continue;  // sources
      for (int i = 0; i < aig.num_fanins(u); ++i) {
        const NodeId f = aig.fanin(u, i);
        if (!seen[f]) {
          seen[f] = 1;
          frontier.push_back(f);
        }
      }
    }
  }
  return g;
}

PaceEncoder::PaceEncoder(const PaceConfig& config) : config_(config) {
  Rng rng(config.seed);
  const int d = config.hidden_dim;
  const int feat = kFeatureDim + config.pos_dim;
  for (int l = 0; l < config.layers; ++l) {
    att_w1_.push_back(nn::make_param(Tensor::xavier(d, 1, rng)));
    att_w2_.push_back(nn::make_param(Tensor::xavier(d, 1, rng)));
    gru_.emplace_back(d + feat, d, rng, "pace.gru" + std::to_string(l));
  }
  mlp_tr_ = nn::Mlp({d, d, 2}, nn::Activation::kSigmoid, rng, "pace.mlp_tr");
  mlp_lg_ = nn::Mlp({d, d, 1}, nn::Activation::kSigmoid, rng, "pace.mlp_lg");
}

Var PaceEncoder::embed(Graph& g, const PaceGraph& graph, const Workload& w,
                       std::uint64_t init_seed) const {
  if (w.pi_prob.size() != graph.pis.size())
    throw Error("PaceEncoder: workload PI count mismatch");
  const int d = config_.hidden_dim;

  Rng rng(init_seed);
  Tensor h0(graph.num_nodes, d);
  for (std::size_t i = 0; i < h0.size(); ++i)
    h0.data()[i] = static_cast<float>(rng.uniform());
  for (std::size_t k = 0; k < graph.pis.size(); ++k) {
    float* row = h0.row(static_cast<int>(graph.pis[k]));
    for (int c = 0; c < d; ++c) row[c] = static_cast<float>(w.pi_prob[k]);
  }
  for (NodeId v : graph.consts) {
    float* row = h0.row(static_cast<int>(v));
    for (int c = 0; c < d; ++c) row[c] = 0.0f;
  }

  const Var features = g.constant(graph.features);
  Var h = g.constant(std::move(h0));
  const int num_targets = static_cast<int>(graph.targets.size());

  std::vector<RowRef> target_refs, feat_refs, edge_target_refs, source_refs;
  for (NodeId v : graph.targets) {
    target_refs.push_back(RowRef{h, static_cast<int>(v)});
    feat_refs.push_back(RowRef{features, static_cast<int>(v)});
  }
  const Var target_feats = g.gather(feat_refs);

  for (int l = 0; l < config_.layers; ++l) {
    // One big batch: every target node updates simultaneously — no level
    // sequencing. This is the parallel shape PACE trades accuracy for.
    edge_target_refs.clear();
    source_refs.clear();
    for (std::size_t e = 0; e < graph.sources.size(); ++e) {
      edge_target_refs.push_back(target_refs[graph.segment[e]]);
      source_refs.push_back(RowRef{h, static_cast<int>(graph.sources[e])});
    }
    const Var hv_prev = g.gather(target_refs);
    const Var hu = g.gather(source_refs);
    const Var scores = g.add(g.matmul(g.gather(edge_target_refs), att_w1_[l]),
                             g.matmul(hu, att_w2_[l]));
    const Var alpha = g.segment_softmax(scores, graph.segment, num_targets);
    const Var m = g.segment_sum(g.mul_col(hu, alpha), graph.segment,
                                num_targets);
    const Var x = g.concat_cols({m, target_feats});
    const Var h_new = gru_[l].apply(g, x, hv_prev);

    // Scatter back: non-target rows (PIs) keep their pinned state by
    // gathering from the old matrix.
    std::vector<RowRef> rows(static_cast<std::size_t>(graph.num_nodes));
    for (int v = 0; v < graph.num_nodes; ++v) rows[v] = RowRef{h, v};
    for (int i = 0; i < num_targets; ++i)
      rows[graph.targets[i]] = RowRef{h_new, i};
    h = g.gather(rows);
    for (int i = 0; i < num_targets; ++i)
      target_refs[i] = RowRef{h, static_cast<int>(graph.targets[i])};
  }
  return h;
}

PaceEncoder::Output PaceEncoder::forward(Graph& g, const PaceGraph& graph,
                                         const Workload& w,
                                         std::uint64_t init_seed) const {
  const Var h = embed(g, graph, w, init_seed);
  return Output{mlp_tr_.apply(g, h), mlp_lg_.apply(g, h)};
}

nn::NamedParams PaceEncoder::params() const {
  nn::NamedParams out;
  for (std::size_t l = 0; l < att_w1_.size(); ++l) {
    out.emplace_back("pace.att_w1." + std::to_string(l), att_w1_[l]);
    out.emplace_back("pace.att_w2." + std::to_string(l), att_w2_[l]);
    gru_[l].collect_params(out);
  }
  mlp_tr_.collect_params(out);
  mlp_lg_.collect_params(out);
  return out;
}

PaceTrainStats fit_pace(PaceEncoder& model,
                        const std::vector<TrainSample>& train,
                        const std::vector<TrainSample>& val, int epochs,
                        float lr, int batch_size) {
  if (train.empty()) throw Error("fit_pace: empty training set");
  std::vector<PaceGraph> train_graphs, val_graphs;
  for (const auto& s : train)
    train_graphs.push_back(build_pace_graph(*s.circuit, model.config()));
  for (const auto& s : val)
    val_graphs.push_back(build_pace_graph(*s.circuit, model.config()));

  nn::Adam adam(model.params(), nn::AdamOptions{lr, 0.9f, 0.999f, 1e-8f, 5.0f});
  Rng shuffle_rng(11);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  PaceTrainStats stats;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double loss_sum = 0.0;
    int in_batch = 0;
    adam.zero_grad();
    for (std::size_t idx = 0; idx < order.size(); ++idx) {
      const TrainSample& s = train[order[idx]];
      Graph g(true);
      const auto out =
          model.forward(g, train_graphs[order[idx]], s.workload, s.init_seed);
      const Var loss =
          g.add(g.l1_loss(out.tr, s.target_tr), g.l1_loss(out.lg, s.target_lg));
      loss_sum += loss->value.at(0, 0);
      g.backward(loss);
      if (++in_batch >= batch_size || idx + 1 == order.size()) {
        adam.step();
        adam.zero_grad();
        in_batch = 0;
      }
    }
    stats.final_loss = loss_sum / static_cast<double>(train.size());
  }

  for (std::size_t i = 0; i < val.size(); ++i) {
    Graph g(false);
    const auto out =
        model.forward(g, val_graphs[i], val[i].workload, val[i].init_seed);
    double pe_tr = 0.0, pe_lg = 0.0;
    for (int v = 0; v < val_graphs[i].num_nodes; ++v) {
      pe_tr += 0.5 * (std::fabs(out.tr->value.at(v, 0) -
                                val[i].target_tr.at(v, 0)) +
                      std::fabs(out.tr->value.at(v, 1) -
                                val[i].target_tr.at(v, 1)));
      pe_lg += std::fabs(out.lg->value.at(v, 0) - val[i].target_lg.at(v, 0));
    }
    stats.avg_pe_tr += pe_tr / val_graphs[i].num_nodes;
    stats.avg_pe_lg += pe_lg / val_graphs[i].num_nodes;
  }
  if (!val.empty()) {
    stats.avg_pe_tr /= static_cast<double>(val.size());
    stats.avg_pe_lg /= static_cast<double>(val.size());
  }
  return stats;
}

}  // namespace deepseq
