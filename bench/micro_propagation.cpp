// Single-circuit propagation microbenchmark across the Table IV designs,
// nn-executor thread counts, DEEPSEQ_NN_FUSE and DEEPSEQ_NN_SIMD settings:
// the zero-barrier execution core this bench exists to track. For every
// design the bench times DeepSeqModel::embed under DEEPSEQ_NN_THREADS-
// equivalent executors (1 = the sequential path) across fuse x simd, checks
// every combination bit-identical to sequential scalar, and — for the
// largest design — verifies gradient bit-identity in grad mode, records
// per-level (per planner flush) timing, and reports the structural chain
// statistics: barriers (cut waves), global syncs the dependency-counted
// scheduler actually pays, released chains, slab row traffic, chains, the
// chain-length histogram, and the fused/unfused barrier ratio. A
// record-overhead micro reports ns per recorded op.
//
// Emits a table and micro_propagation.json (bench_util::JsonWriter) with
// `threads`, `fused` and `simd` dimensions so the perf trajectory of the
// record/plan/execute stack is machine-readable across commits (the repo
// commits a snapshot as BENCH_micro_propagation.json at the root). The
// structural fields (barriers, global_syncs, chains, chain_len_histogram)
// depend only on the plans and the selected scheduler, never on host core
// count — a 1-core CI box verifies the barrier win deterministically; only
// the speedup column needs a multi-core host (`hardware_concurrency` is
// part of the JSON so ~1.0x is self-explaining).
//
// Knobs: DEEPSEQ_PROP_THREADS (max thread sweep, default 4),
// DEEPSEQ_PROP_REPS (timing repetitions, default 3), DEEPSEQ_FULL=1 for
// paper-scale designs and model.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/model.hpp"
#include "dataset/test_designs.hpp"
#include "netlist/aig.hpp"
#include "nn/executor.hpp"
#include "nn/gradcheck.hpp"
#include "runtime/thread_pool.hpp"

using namespace deepseq;
using namespace deepseq::bench;

namespace {

struct Design {
  std::string name;
  Circuit aig;
  CircuitGraph graph;
  Workload workload;
  int levels = 0;
};

bool bit_identical(const nn::Tensor& a, const nn::Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void set_fuse(bool on) { ::setenv("DEEPSEQ_NN_FUSE", on ? "1" : "0", 1); }
void set_simd(bool on) { ::setenv("DEEPSEQ_NN_SIMD", on ? "1" : "0", 1); }

double time_embed(const DeepSeqModel& model, const Design& d,
                  nn::Executor& exec, int reps, nn::Tensor* out,
                  nn::ExecStats* stats = nullptr) {
  nn::ExecutorScope scope(exec);
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const bool trace = stats != nullptr && rep == 0;
    nn::ExecStats local;
    WallTimer t;
    nn::Graph g(/*grad_enabled=*/false);
    nn::Var e;
    if (trace) {
      nn::ExecTraceScope ts(local);
      e = model.embed(g, d.graph, d.workload, 7);
    } else {
      e = model.embed(g, d.graph, d.workload, 7);
    }
    best = std::min(best, t.millis());
    if (trace) *stats = std::move(local);
    if (rep == 0 && out != nullptr) *out = e->value;
  }
  return best;
}

void json_exec_stats(JsonWriter& json, const nn::ExecStats& stats) {
  json.begin_object();
  json.field("flushes", stats.flushes);
  json.field("barriers", stats.barriers);
  json.field("global_syncs", stats.global_syncs);
  json.field("released_chains", stats.released_chains);
  json.field("barriered_chains", stats.barriered_chains);
  json.field("chains", stats.chains);
  json.field("steps", stats.steps);
  json.field("fused_ops", stats.fused_ops);
  json.field("parallel_cuts", stats.parallel_cuts);
  json.field("slab_gather_rows", stats.slab_gather_rows);
  json.field("slab_scatter_rows", stats.slab_scatter_rows);
  json.field("simd_lanes", stats.simd_lanes);
  json.key("chain_len_histogram");
  json.begin_object();
  for (int b = 0; b < nn::kChainHistBuckets; ++b)
    json.field(nn::chain_len_bucket_name(b), stats.chain_len_hist[b]);
  json.end_object();
  json.begin_array("flush_ms");
  for (const double ms : stats.flush_ms) json.value(ms);
  json.end_array();
  json.end_object();
}

/// Record-layer overhead: ns to record (not execute) one small op in a
/// steady-state no-grad graph — arena-recycled Ops, inline operand storage.
/// The timer covers only the recording loop; the flush happens on scope
/// exit, outside it. Best of several reps = warm free-list state.
double measure_record_ns_per_op() {
  set_fuse(true);
  nn::Executor sequential;
  nn::ExecutorScope scope(sequential);
  nn::Graph g(/*grad_enabled=*/false);
  const nn::Var a = nn::make_constant(nn::Tensor::full(8, 8, 0.5f));
  const nn::Var b = nn::make_constant(nn::Tensor::full(8, 8, 0.25f));
  constexpr int kOps = 4096;
  double best_ms = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    nn::BatchScope batch(g);
    WallTimer t;
    nn::Var x = g.add(a, b);
    for (int k = 1; k < kOps; k += 3) {
      x = g.mul(x, b);
      x = g.add(x, a);
      x = g.sigmoid(x);
    }
    best_ms = std::min(best_ms, t.millis());
  }  // scope exit flushes the recorded chain (excluded from the timer)
  return best_ms * 1e6 / kOps;
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  print_banner("PROPAGATION",
               "single-circuit embed vs nn-executor threads and chain fusion "
               "(record/plan/execute)",
               cfg);

  const int max_threads = static_cast<int>(env_int("DEEPSEQ_PROP_THREADS", 4));
  const int reps = static_cast<int>(env_int("DEEPSEQ_PROP_REPS", 3));
  std::vector<int> sweep{1};
  for (const int t : {2, 4, 8})
    if (t <= max_threads) sweep.push_back(t);

  std::vector<Design> designs;
  for (TestDesign& td :
       build_all_test_designs(default_design_scale(), cfg.eval_seed)) {
    Design d;
    d.name = td.name;
    d.aig = optimize_aig(decompose_to_aig(td.netlist).aig).circuit;
    d.graph = build_circuit_graph(d.aig);
    Rng rng(cfg.eval_seed);
    d.workload = random_workload(d.aig, rng);
    d.levels = static_cast<int>(d.graph.comb_forward.size());
    designs.push_back(std::move(d));
  }
  std::size_t largest = 0;
  for (std::size_t i = 1; i < designs.size(); ++i)
    if (designs[i].aig.num_nodes() > designs[largest].aig.num_nodes())
      largest = i;

  const DeepSeqModel model(ModelConfig::deepseq(cfg.hidden, cfg.iterations));
  runtime::ThreadPool pool(sweep.back());

  JsonWriter json;
  json.begin_object();
  json.field("bench", "micro_propagation");
  json.field("hidden", cfg.hidden);
  json.field("iterations", cfg.iterations);
  json.field("hardware_concurrency",
             static_cast<int>(std::thread::hardware_concurrency()));
  json.field("largest_design", designs[largest].name);
  json.begin_array("rows");

  std::printf("%-10s | %6s %6s | %7s %5s %4s | %10s | %8s | %5s\n", "design",
              "nodes", "levels", "threads", "fused", "simd", "embed ms",
              "speedup", "biteq");
  std::printf("%.*s\n", 82, std::string(82, '-').c_str());

  double largest_best_speedup = 0.0;
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const Design& d = designs[i];
    nn::Tensor reference;
    double seq_ms = 0.0;
    for (const int threads : sweep) {
      for (const bool fused : {true, false}) {
        for (const bool simd : {false, true}) {
          set_fuse(fused);
          set_simd(simd);
          nn::Executor exec(&pool, threads);
          nn::Tensor embedding;
          nn::ExecStats stats;
          const double ms = time_embed(model, d, exec, reps, &embedding, &stats);
          // Reference: sequential, fused, scalar — the schedule every other
          // combination (simd included) must reproduce bit-for-bit.
          const bool is_ref = threads == 1 && fused && !simd;
          const bool identical =
              is_ref ? true : bit_identical(reference, embedding);
          if (is_ref) {
            reference = std::move(embedding);
            seq_ms = ms;
          }
          const double speedup = ms > 0.0 ? seq_ms / ms : 0.0;
          if (i == largest && threads > 1 && fused && simd)
            largest_best_speedup = std::max(largest_best_speedup, speedup);
          std::printf(
              "%-10s | %6zu %6d | %7d %5s %4s | %10.2f | %7.2fx | %5s\n",
              d.name.c_str(), d.aig.num_nodes(), d.levels, threads,
              fused ? "yes" : "no", simd ? "yes" : "no", ms, speedup,
              identical ? "yes" : "NO");
          json.begin_object();
          json.field("design", d.name);
          json.field("nodes", static_cast<std::uint64_t>(d.aig.num_nodes()));
          json.field("levels", d.levels);
          json.field("threads", threads);
          json.field("fused", fused);
          json.field("simd", simd);
          json.field("embed_ms", ms);
          json.field("ns_per_flush",
                     stats.flushes > 0 ? ms * 1e6 / stats.flushes : 0.0);
          json.field("speedup_vs_1t", speedup);
          json.field("bit_identical", identical);
          json.field("barriers", stats.barriers);
          json.field("global_syncs", stats.global_syncs);
          json.field("released_chains", stats.released_chains);
          json.field("chains", stats.chains);
          json.field("flushes", stats.flushes);
          json.field("slab_gather_rows", stats.slab_gather_rows);
          json.field("slab_scatter_rows", stats.slab_scatter_rows);
          json.field("simd_lanes", stats.simd_lanes);
          json.end_object();
          std::fflush(stdout);
        }
      }
    }
  }
  set_simd(true);
  std::printf("\n");
  json.end_array();  // rows

  // Per-level (per planner flush) structure + timing of the largest design:
  // sequential vs widest executor, fused vs unfused — the machine-readable
  // shape of where time (and synchronization) goes. The fused/unfused
  // barrier ratio is the structural win chain fusion exists for.
  {
    const Design& d = designs[largest];
    nn::ExecStats fused_stats, unfused_stats;
    {
      set_fuse(true);
      nn::Executor exec(&pool, 1);
      nn::ExecStats stats;
      time_embed(model, d, exec, 1, nullptr, &stats);
      json.key("levels_1t");
      json_exec_stats(json, stats);
    }
    {
      set_fuse(true);
      nn::Executor exec(&pool, sweep.back());
      time_embed(model, d, exec, 1, nullptr, &fused_stats);
      json.key("levels_" + std::to_string(sweep.back()) + "t");
      json_exec_stats(json, fused_stats);
    }
    {
      set_fuse(false);
      nn::Executor exec(&pool, sweep.back());
      time_embed(model, d, exec, 1, nullptr, &unfused_stats);
      json.key("levels_" + std::to_string(sweep.back()) + "t_unfused");
      json_exec_stats(json, unfused_stats);
    }
    set_fuse(true);
    const double reduction =
        fused_stats.barriers > 0
            ? static_cast<double>(unfused_stats.barriers) /
                  static_cast<double>(fused_stats.barriers)
            : 0.0;
    std::printf(
        "%s chain structure at %d threads: %d flushes, %d barriers "
        "(unfused %d, %.1fx fewer), %d chains, %d steps, %d ops fused\n",
        d.name.c_str(), sweep.back(), fused_stats.flushes,
        fused_stats.barriers, unfused_stats.barriers, reduction,
        fused_stats.chains, fused_stats.steps, fused_stats.fused_ops);
    json.field("barrier_reduction_at_max_threads", reduction);
  }

  // Record-layer overhead: arena-allocated, inline-operand op recording.
  {
    const double ns = measure_record_ns_per_op();
    std::printf("record overhead: %.0f ns/op\n", ns);
    json.field("record_ns_per_op", ns);
  }

  // Grad-mode parity on the largest design: loss and every parameter
  // gradient bit-identical between sequential and parallel backward.
  {
    const Design& d = designs[largest];
    const nn::Tensor target_lg(d.graph.num_nodes, 1);
    const auto params = model.params();
    auto run = [&](nn::Executor& exec, std::vector<nn::Tensor>& grads) {
      nn::ExecutorScope scope(exec);
      for (const auto& [name, p] : params) {
        (void)name;
        if (p->has_grad()) p->grad.zero();
      }
      nn::Graph g(/*grad_enabled=*/true);
      const auto out = model.forward(g, d.graph, d.workload, 7);
      const nn::Var loss = g.l1_loss(out.lg, target_lg);
      g.backward(loss);
      grads.clear();
      for (const auto& [name, p] : params) {
        (void)name;
        grads.push_back(p->has_grad()
                            ? p->grad
                            : nn::Tensor(p->value.rows(), p->value.cols()));
      }
      return loss->value.at(0, 0);
    };
    nn::Executor seq;
    nn::Executor par(&pool, sweep.back());
    std::vector<nn::Tensor> g_seq, g_par;
    const float loss_seq = run(seq, g_seq);
    const float loss_par = run(par, g_par);
    bool grads_identical = loss_seq == loss_par && g_seq.size() == g_par.size();
    for (std::size_t k = 0; grads_identical && k < g_seq.size(); ++k)
      grads_identical = bit_identical(g_seq[k], g_par[k]);
    std::printf("grad-mode parity on %s at %d threads: %s\n", d.name.c_str(),
                sweep.back(), grads_identical ? "bit-identical" : "DIVERGED");
    json.field("grad_bit_identical", grads_identical);
  }

  json.field("largest_speedup_at_max_threads", largest_best_speedup);
  json.end_object();
  write_json_file("micro_propagation.json", json.str());
  return 0;
}
