#pragma once

#include <memory>
#include <vector>

#include "api/backend.hpp"
#include "artifact/artifact.hpp"
#include "core/circuit_graph.hpp"
#include "core/model.hpp"
#include "core/pace.hpp"
#include "reliability/reliability_model.hpp"

namespace deepseq::api {

/// Structure state of the DeepSeq backend: the paper's levelized
/// propagation schedule (Fig. 2) plus the PO list for task readouts.
struct DeepSeqState final : BackendState {
  CircuitGraph graph;
  std::vector<NodeId> pos;
};

/// Adapter over the paper's customized sequential propagation model.
/// Registered as "deepseq". Supports the full task surface: regress heads
/// (logic/transition probability, power) and the reliability readout (a
/// ReliabilityModel forked deterministically from the same weights).
class DeepSeqBackend final : public EmbeddingBackend {
 public:
  explicit DeepSeqBackend(const ModelConfig& config);
  /// Build from tuned weights: the architecture comes from the artifact's
  /// manifest snapshot, backbone + regression (and the reliability error
  /// head, when the artifact bundles one) from its sections, and the
  /// fingerprint from the artifact content hash — so caches can never serve
  /// one weight-set's embeddings or regressions for another. Fail-fast
  /// Error on a non-"deepseq" artifact kind.
  explicit DeepSeqBackend(const artifact::Artifact& a);

  const BackendInfo& info() const override { return info_; }
  std::shared_ptr<const BackendState> prepare(const Circuit& aig) const override;
  nn::Tensor embed(const BackendState& state, const Workload& w,
                   std::uint64_t init_seed) const override;
  Regression regress(const nn::Tensor& embedding) const override;
  ReliabilityEstimate reliability(const BackendState& state, const Workload& w,
                                  const std::vector<NodeId>& pos,
                                  std::uint64_t init_seed) const override;

  const DeepSeqModel& model() const { return model_; }

 private:
  BackendInfo info_;
  DeepSeqModel model_;
  ReliabilityModel reliability_model_;
};

/// Structure state of the PACE backend: precomputed attention sets.
struct PaceState final : BackendState {
  PaceGraph graph;
};

/// Adapter over the §VI parallel structure encoder. Registered as "pace".
/// Embedding-only: its probability heads are training-internal, so regress
/// and reliability report unsupported.
class PaceBackend final : public EmbeddingBackend {
 public:
  explicit PaceBackend(const PaceConfig& config);
  /// Build from a kind="pace" artifact (see DeepSeqBackend's artifact ctor).
  explicit PaceBackend(const artifact::Artifact& a);

  const BackendInfo& info() const override { return info_; }
  std::shared_ptr<const BackendState> prepare(const Circuit& aig) const override;
  nn::Tensor embed(const BackendState& state, const Workload& w,
                   std::uint64_t init_seed) const override;

  const PaceEncoder& encoder() const { return encoder_; }

 private:
  BackendInfo info_;
  PaceEncoder encoder_;
};

/// Deterministic fingerprints of the two built-in configurations (shared by
/// the adapters and anything that needs cache-key parity with them).
std::uint64_t deepseq_fingerprint(const ModelConfig& m);
std::uint64_t pace_fingerprint(const PaceConfig& p);

/// Fingerprint of an artifact-built backend, derived from the artifact
/// content hash (which already covers kind, config and every weight bit).
std::uint64_t artifact_fingerprint(std::uint64_t content_hash);

/// BackendInfo::weights label of an artifact-built backend
/// ("artifact:<16-hex content hash>").
std::string artifact_weights_label(std::uint64_t content_hash);

}  // namespace deepseq::api
