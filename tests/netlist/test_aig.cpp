#include "netlist/aig.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "common/rng.hpp"
#include "dataset/embedded.hpp"
#include "dataset/generator.hpp"
#include "sim/simulator.hpp"

namespace deepseq {
namespace {

/// Check that for every original node, the mapped AIG node computes the
/// same sequence of values under a shared input stream.
void expect_equivalent(const Circuit& original, const AigConversion& conv,
                       int cycles, std::uint64_t seed) {
  SequentialSimulator so(original), sa(conv.aig);
  // PI mapping: original pi k -> conv.node_map[pi].
  Rng pat(seed);
  std::vector<std::uint64_t> pio(original.pis().size());
  std::vector<std::uint64_t> pia(conv.aig.pis().size());
  std::vector<int> aig_pi_pos(conv.aig.num_nodes(), -1);
  for (std::size_t k = 0; k < conv.aig.pis().size(); ++k)
    aig_pi_pos[conv.aig.pis()[k]] = static_cast<int>(k);

  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (std::size_t k = 0; k < pio.size(); ++k) {
      pio[k] = pat.next_u64();
      const int pos = aig_pi_pos[conv.node_map[original.pis()[k]]];
      ASSERT_GE(pos, 0);
      pia[static_cast<std::size_t>(pos)] = pio[k];
    }
    so.step(pio);
    sa.step(pia);
    for (NodeId v = 0; v < original.num_nodes(); ++v) {
      if (original.type(v) == GateType::kConst0) continue;
      ASSERT_EQ(so.value(v), sa.value(conv.node_map[v]))
          << "cycle " << cycle << " node " << v << " ("
          << gate_type_name(original.type(v)) << ")";
    }
    so.clock();
    sa.clock();
  }
}

TEST(AigDecompose, S27EquivalentAfterDecomposition) {
  const Circuit c = iscas89_s27();
  const AigConversion conv = decompose_to_aig(c);
  EXPECT_TRUE(conv.aig.is_strict_aig());
  expect_equivalent(c, conv, 64, 123);
}

TEST(AigDecompose, EveryGateTypeEquivalent) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId s = c.add_pi("s");
  c.add_po(c.add_gate(GateType::kOr, {a, b}, "or"), "o1");
  c.add_po(c.add_gate(GateType::kNand, {a, b}, "nand"), "o2");
  c.add_po(c.add_gate(GateType::kNor, {a, b}, "nor"), "o3");
  c.add_po(c.add_gate(GateType::kXor, {a, b}, "xor"), "o4");
  c.add_po(c.add_gate(GateType::kXnor, {a, b}, "xnor"), "o5");
  c.add_po(c.add_gate(GateType::kMux, {s, a, b}, "mux"), "o6");
  c.add_po(c.add_gate(GateType::kBuf, {a}, "buf"), "o7");
  c.validate();
  const AigConversion conv = decompose_to_aig(c);
  EXPECT_TRUE(conv.aig.is_strict_aig());
  expect_equivalent(c, conv, 16, 7);
}

TEST(AigDecompose, RandomCircuitEquivalent) {
  Rng rng(555);
  GeneratorSpec spec;
  spec.num_gates = 150;
  spec.num_ffs = 12;
  const Circuit c = generate_circuit(spec, rng);
  expect_equivalent(c, decompose_to_aig(c), 48, 99);
}

TEST(AigDecompose, PreservesIoCounts) {
  const Circuit c = iscas89_s27();
  const AigConversion conv = decompose_to_aig(c);
  EXPECT_EQ(conv.aig.pis().size(), c.pis().size());
  EXPECT_EQ(conv.aig.ffs().size(), c.ffs().size());
  EXPECT_EQ(conv.aig.pos().size(), c.pos().size());
}

TEST(AigOptimize, RemovesDoubleInverters) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId n1 = c.add_not(a);
  const NodeId n2 = c.add_not(n1);
  const NodeId n3 = c.add_not(n2);
  c.add_po(n3, "o");
  const OptimizeResult r = optimize_aig(c);
  // NOT(NOT(NOT a)) == NOT a: one inverter survives.
  EXPECT_EQ(r.circuit.type_counts()[static_cast<int>(GateType::kNot)], 1u);
}

TEST(AigOptimize, StructuralHashingMergesDuplicates) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId g1 = c.add_and(a, b);
  const NodeId g2 = c.add_and(b, a);  // commuted duplicate
  c.add_po(c.add_and(g1, g2), "o");   // AND(x, x) -> x
  const OptimizeResult r = optimize_aig(c);
  EXPECT_EQ(r.circuit.type_counts()[static_cast<int>(GateType::kAnd)], 1u);
}

TEST(AigOptimize, ComplementAnnihilation) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId n = c.add_not(a);
  const NodeId g = c.add_and(a, n);  // a & ~a == 0
  c.add_po(g, "o");
  const OptimizeResult r = optimize_aig(c);
  ASSERT_EQ(r.circuit.pos().size(), 1u);
  EXPECT_EQ(r.circuit.type(r.circuit.pos()[0]), GateType::kConst0);
}

TEST(AigOptimize, DeadLogicSwept) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId live = c.add_and(a, b);
  c.add_not(live);  // dead: never reaches a PO
  c.add_po(live, "o");
  const OptimizeResult r = optimize_aig(c);
  EXPECT_EQ(r.circuit.type_counts()[static_cast<int>(GateType::kNot)], 0u);
  EXPECT_GT(r.removed_nodes, 0u);
}

TEST(AigOptimize, KeepsAllPis) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  c.add_pi("unused");
  c.add_po(c.add_not(a), "o");
  const OptimizeResult r = optimize_aig(c);
  EXPECT_EQ(r.circuit.pis().size(), 2u);
}

TEST(AigOptimize, PreservesBehaviour) {
  const Circuit c = decompose_to_aig(iscas89_s27()).aig;
  const OptimizeResult r = optimize_aig(c);
  EXPECT_LE(r.circuit.num_nodes(), c.num_nodes());

  SequentialSimulator s1(c), s2(r.circuit);
  Rng pat(17);
  for (int cycle = 0; cycle < 64; ++cycle) {
    std::vector<std::uint64_t> pi(c.pis().size());
    for (auto& w : pi) w = pat.next_u64();
    // optimize_aig keeps PI order.
    s1.step(pi);
    s2.step(pi);
    for (std::size_t k = 0; k < c.pos().size(); ++k)
      ASSERT_EQ(s1.value(c.pos()[k]), s2.value(r.circuit.pos()[k]));
    s1.clock();
    s2.clock();
  }
}

TEST(AigOptimize, RejectsGenericGates) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  c.add_po(c.add_gate(GateType::kOr, {a, b}), "o");
  EXPECT_THROW(optimize_aig(c), CircuitError);
}

TEST(AigOptimize, NodeMapTracksRepresentatives) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId n1 = c.add_not(a);
  const NodeId n2 = c.add_not(n1);  // collapses to a
  c.add_po(n2, "o");
  const OptimizeResult r = optimize_aig(c);
  EXPECT_EQ(r.node_map[n2], r.node_map[a]);
}

}  // namespace
}  // namespace deepseq
