#include "prob/reliability_analytic.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dataset/embedded.hpp"
#include "sim/fault_sim.hpp"

namespace deepseq {
namespace {

TEST(ReliabilityAnalytic, ZeroErrorRateIsPerfect) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.5, 0.5, 0.5, 0.5};
  ReliabilityOptions opt;
  opt.gate_error_rate = 0.0;
  const auto est = estimate_reliability(c, w, opt);
  EXPECT_DOUBLE_EQ(est.circuit_reliability, 1.0);
  for (const double r : est.node_reliability) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(ReliabilityAnalytic, SingleGateMatchesEpsilon) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId g = c.add_and(a, b, "g");
  c.add_po(g, "o");
  Workload w;
  w.pi_prob = {0.5, 0.5};
  ReliabilityOptions opt;
  opt.gate_error_rate = 0.01;
  const auto est = estimate_reliability(c, w, opt);
  // Inputs are perfect, so the gate's only unreliability is intrinsic.
  EXPECT_NEAR(est.node_reliability[g], 0.99, 1e-9);
  EXPECT_NEAR(est.circuit_reliability, 0.99, 1e-9);
}

TEST(ReliabilityAnalytic, AndGateMasksInputErrors) {
  // Two-level: g2 = AND(g1, b) with b mostly 0 masks g1's errors.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId g1 = c.add_not(a, "g1");
  const NodeId g2 = c.add_and(g1, b, "g2");
  c.add_po(g2, "o");
  Workload w_mask, w_pass;
  w_mask.pi_prob = {0.5, 0.05};  // b ~ 0: AND output mostly 0, errors masked
  w_pass.pi_prob = {0.5, 0.95};  // b ~ 1: g1's errors pass through
  ReliabilityOptions opt;
  opt.gate_error_rate = 0.01;
  const double r_mask = estimate_reliability(c, w_mask, opt).node_reliability[g2];
  const double r_pass = estimate_reliability(c, w_pass, opt).node_reliability[g2];
  EXPECT_GT(r_mask, r_pass);
}

TEST(ReliabilityAnalytic, DeeperLogicIsLessReliable) {
  Circuit chain1, chain4;
  {
    const NodeId a = chain1.add_pi("a");
    chain1.add_po(chain1.add_not(a), "o");
  }
  {
    NodeId x = chain4.add_pi("a");
    for (int i = 0; i < 4; ++i) x = chain4.add_not(x);
    chain4.add_po(x, "o");
  }
  Workload w1, w4;
  w1.pi_prob = {0.5};
  w4.pi_prob = {0.5};
  ReliabilityOptions opt;
  opt.gate_error_rate = 0.01;
  const double r1 = estimate_reliability(chain1, w1, opt).circuit_reliability;
  const double r4 = estimate_reliability(chain4, w4, opt).circuit_reliability;
  EXPECT_GT(r1, r4);
  // NOT chains never mask: r4 ~ accumulated flips of 4 gates.
  EXPECT_NEAR(r1, 0.99, 1e-9);
  EXPECT_LT(r4, 0.97);
}

TEST(ReliabilityAnalytic, TracksMonteCarloOnTreeCircuit) {
  // On reconvergence-free logic the analytic estimate should land close to
  // fault simulation.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId d = c.add_pi("d");
  const NodeId g1 = c.add_and(a, b, "g1");
  const NodeId g2 = c.add_gate(GateType::kOr, {g1, d}, "g2");
  c.add_po(g2, "o");
  Workload w;
  w.pi_prob = {0.5, 0.5, 0.3};
  w.pattern_seed = 77;
  ReliabilityOptions opt;
  opt.gate_error_rate = 0.01;
  const double analytic = estimate_reliability(c, w, opt).circuit_reliability;
  FaultSimOptions fopt;
  fopt.num_sequences = 4096;
  fopt.cycles_per_sequence = 20;
  fopt.gate_error_rate = 0.01;
  const double mc = simulate_faults(c, w, fopt).circuit_reliability;
  EXPECT_NEAR(analytic, mc, 0.01);
}

TEST(ReliabilityAnalytic, S27ReasonableRange) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.5, 0.5, 0.5, 0.5};
  ReliabilityOptions opt;
  opt.gate_error_rate = 0.0005;  // the paper's 0.05%
  const auto est = estimate_reliability(c, w, opt);
  EXPECT_GT(est.circuit_reliability, 0.95);
  EXPECT_LT(est.circuit_reliability, 1.0);
  for (const double r : est.node_reliability) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(ReliabilityAnalytic, MismatchedWorkloadThrows) {
  const Circuit c = iscas89_s27();
  Workload w;
  w.pi_prob = {0.5};
  EXPECT_THROW(estimate_reliability(c, w, {}), Error);
}

}  // namespace
}  // namespace deepseq
